"""JavelinILU: the user-facing incomplete-factorization framework.

Typical use::

    from repro import JavelinILU, haswell
    ilu = JavelinILU()                 # ILU(0), auto two-stage schedule
    ilu.setup(A)                       # symbolic: pattern + level permutation
    res = ilu.factor()                 # numeric: bit-identical to sequential
    x = ilu.solve(b)                   # x = U^-1 L^-1 b (preconditioner apply)

    from repro.machine import SimMachine
    rep = ilu.simulate_factor(SimMachine(haswell(), 14))   # modelled time
    t_stri = ilu.simulate_trisolve(SimMachine(haswell(), 14), method="two_stage")

``setup`` performs the paper's preprocessing (§III): predetermine the
fill pattern (ILU(k)), level-schedule ``lower(S + Sᵀ)``, split into the
two stages, and symmetrically permute the matrix into the level
ordering.  ``factor`` runs the staged numeric factorization; the result
is provably identical to the sequential up-looking reference because
every stage eliminates each row's columns in ascending order.
``simulate_*`` replay the same schedules on a simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..machine.core import SimMachine
from ..machine.trace import ExecutionTrace
from ..sparse.csr import CSRMatrix
from ..sparse.pattern import has_full_diagonal
from .symbolic import (
    ilu0_pattern,
    iluk_pattern,
    row_factor_costs,
    row_factor_costs_split,
)
from ..kernels import cached_analysis
from ..kernels.cache import pattern_fingerprint
from .iluk import (
    _scatter_values,
    drop_row_fixed_pattern,
    factor_row,
    ilu_factor_sequential,
)
from .schedule import ScheduleOptions, build_schedule
from .upper import simulate_upper_p2p, simulate_upper_barrier
from .lower_er import factor_lower_er, simulate_lower_er
from .lower_sr import SegmentedRows, factor_lower_sr, simulate_lower_sr
from .trisolve import (
    LevelizedTriangularSolver,
    simulate_trisolve_barrier,
    simulate_trisolve_p2p,
    simulate_trisolve_two_stage,
)
from ..ordering.levelsets import level_sets_lower
from ..sparse.pattern import lower_pattern, symmetrize_pattern

__all__ = ["JavelinOptions", "FactorResult", "SimReport", "JavelinILU"]


@dataclass(frozen=True)
class JavelinOptions:
    """All user knobs in one place.

    ``fill_level`` selects ILU(k); ``tau`` adds fixed-pattern numerical
    dropping on top (the framework's ILU(k, τ): entries below
    ``τ·‖A[i,:]‖₂`` are zeroed at row completion, storage retained so
    the schedule and stri structure are untouched); ``modified`` adds
    MILU compensation; ``schedule`` carries the two-stage partition
    options (α, density factor, lower method, A vs A+Aᵀ); ``tile_size``
    is the SR tile size; ``pivot_tol`` aborts on tiny pivots (Javelin
    does not pivot).
    """

    fill_level: int = 0
    tau: float = 0.0  # ILU(k, τ): fixed-pattern numerical dropping
    modified: bool = False  # MILU compensation of dropped mass
    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    tile_size: int = 64
    pivot_tol: float = 0.0

    def with_(self, **kw):
        return replace(self, **kw)


@dataclass
class FactorResult:
    """Outcome of the numeric factorization (permuted space)."""

    F: CSRMatrix  # combined L\\U factor of P A Pᵀ
    perm: np.ndarray  # gather permutation (new ← old)
    inv_perm: np.ndarray
    method: str  # lower-stage method actually used

    def factor_in_original_order(self):
        """The factor permuted back to the input row/column numbering."""
        return self.F.permute(row_perm=self.inv_perm, col_perm=self.inv_perm)


@dataclass
class SimReport:
    """Simulated execution times (seconds) of one factorization.

    ``trace`` is the upper-stage (or LS-only) timeline; ``lower_trace``
    carries the ER/SR lower stage when a two-stage schedule ran, so
    exporters (:mod:`repro.obs.chrome_trace`) can show the full
    upper+lower timeline instead of silently dropping the second stage.
    """

    total: float
    upper: float
    lower: float
    method: str
    n_threads: int
    trace: ExecutionTrace | None = None
    lower_trace: ExecutionTrace | None = None


class JavelinILU:
    """Two-stage parallel ILU preconditioner framework."""

    def __init__(self, options: JavelinOptions | None = None):
        self.options = options or JavelinOptions()
        self._ready = False
        self._factored = False
        self._solver = None

    # ------------------------------------------------------------------
    # symbolic phase
    # ------------------------------------------------------------------
    def setup(self, A: CSRMatrix, *, n_threads: int | None = None):
        """Pattern, level schedule, two-stage split, and permutation.

        ``n_threads`` (optional) lets the automatic ER/SR choice resolve
        now; otherwise it resolves per simulation call.
        """
        if A.n_rows != A.n_cols:
            raise ValueError("Javelin requires a square matrix")
        if not has_full_diagonal(A):
            raise ValueError(
                "matrix needs a structurally full diagonal; apply a "
                "Dulmage-Mendelsohn row permutation first "
                "(repro.ordering.dulmage_mendelsohn_row_perm)"
            )
        opts = self.options
        S = (
            ilu0_pattern(A)
            if opts.fill_level == 0
            else iluk_pattern(A, opts.fill_level).pattern_copy()
        )
        self.schedule = build_schedule(S, opts.schedule, n_threads=n_threads)
        self.perm = self.schedule.permutation()
        self.inv_perm = np.empty_like(self.perm)
        self.inv_perm[self.perm] = np.arange(self.perm.shape[0])
        self.A_perm = A.permute(row_perm=self.perm, col_perm=self.perm)
        self.S_perm = S.permute(row_perm=self.perm, col_perm=self.perm).pattern_copy()
        self.level_ptr = self.schedule.upper_level_ptr()
        self.m = self.schedule.n_upper_rows
        self.pattern_key = pattern_fingerprint(A)
        self._set_drop_threshold()
        self._costs = None
        self._split_costs = None
        self._ready = True
        self._factored = False
        self._solver = None
        return self

    def _set_drop_threshold(self):
        """Value-dependent ILU(k, τ) thresholds of the current ``A_perm``."""
        if self.options.tau > 0.0:
            norms = np.zeros(self.A_perm.n_rows)
            for r in range(self.A_perm.n_rows):
                _, vals = self.A_perm.row(r)
                norms[r] = np.sqrt(np.sum(vals * vals))
            self.drop_threshold = self.options.tau * norms
        else:
            self.drop_threshold = None

    def refactor(self, A: CSRMatrix, method: str | None = None) -> FactorResult:
        """Value-only re-factorization: new values, same sparsity pattern.

        The time-evolving regime the framework targets — Newton loops,
        implicit time-steppers — re-factors the *same* pattern for
        thousands of steps with drifting values.  Everything
        :meth:`setup` computes is a pure function of the pattern (fill
        pattern, level schedule, two-stage split, permutation), so a
        value change needs none of it: this re-permutes the new values,
        refreshes the value-dependent ILU(k, τ) drop thresholds, and
        runs the numeric phase against the cached symbolic products.

        Contract: the result is **bitwise identical** to
        ``JavelinILU(options).setup(A).factor(method)`` on the same
        ``A`` — value-only reuse is a cost optimization, never a
        numerical one.  Raises ``ValueError`` when ``A``'s pattern
        differs from the setup pattern (call :meth:`setup` instead).
        """
        if not self._ready:
            raise RuntimeError("call setup(A) before refactor()")
        key = pattern_fingerprint(A)
        if key != self.pattern_key:
            raise ValueError(
                "refactor() requires the setup sparsity pattern "
                f"(got {key[:12]}, setup was {self.pattern_key[:12]}); "
                "call setup() for a new pattern"
            )
        self.A_perm = A.permute(row_perm=self.perm, col_perm=self.perm)
        self._set_drop_threshold()
        return self.factor(method)

    # ------------------------------------------------------------------
    # numeric phase
    # ------------------------------------------------------------------
    def _resolve_method(self, n_threads=None):
        method = self.schedule.chosen_lower_method
        if method == "auto":
            if self.schedule.n_lower_rows == 0:
                return "none"
            if n_threads is None:
                return "er"
            return "er" if self.schedule.n_lower_rows >= n_threads else "sr"
        return method

    def factor(self, method: str | None = None) -> FactorResult:
        """Numeric factorization with the staged execution order.

        ``method`` overrides the lower-stage choice ("er" | "sr" |
        "none").  All choices produce the identical factor; tests assert
        bit-for-bit agreement with the sequential reference.
        """
        if not self._ready:
            raise RuntimeError("call setup(A) before factor()")
        opts = self.options
        method = method or self._resolve_method()
        F = _scatter_values(self.S_perm, self.A_perm)
        # the cache keys on F's pattern, so the solve plans built later
        # (build_solver / the lazy solve path) reuse this same analysis
        diag_pos = cached_analysis(F).diag_pos(
            message="pattern has no diagonal entry in row {row}"
        )
        n = F.n_rows
        m = self.m if method != "none" else n
        if self.drop_threshold is not None:
            thresh = self.drop_threshold

            def on_done(r):
                drop_row_fixed_pattern(
                    F, r, diag_pos, thresh[r], modified=opts.modified
                )

        else:
            on_done = None
        for r in range(m):
            factor_row(F, r, diag_pos, pivot_tol=opts.pivot_tol)
            if on_done is not None:
                on_done(r)
        if method == "er":
            factor_lower_er(
                F, self.m, diag_pos, pivot_tol=opts.pivot_tol, on_row_complete=on_done
            )
        elif method == "sr":
            sr = SegmentedRows.build(
                self.S_perm, self.m, self.level_ptr, tile_size=opts.tile_size
            )
            factor_lower_sr(
                F, sr, diag_pos, pivot_tol=opts.pivot_tol, on_row_complete=on_done
            )
        elif method != "none":
            raise ValueError(f"unknown lower method {method!r}")
        self.F = F
        self._factored = True
        self._solver = None  # values changed; sweeps rebind on next solve
        self.result = FactorResult(
            F=F, perm=self.perm, inv_perm=self.inv_perm, method=method
        )
        return self.result

    def factor_reference(self) -> CSRMatrix:
        """Plain sequential up-looking ILU of the permuted matrix.

        Applies the same fixed-pattern dropping as :meth:`factor` when
        ``tau > 0`` (drop at each row's completion), so staged-vs-
        sequential parity tests cover the ILU(k, τ) path too.
        """
        if not self._ready:
            raise RuntimeError("call setup(A) before factor_reference()")
        if self.drop_threshold is None:
            return ilu_factor_sequential(
                self.A_perm, self.S_perm, pivot_tol=self.options.pivot_tol
            )
        F = _scatter_values(self.S_perm, self.A_perm)
        diag_pos = cached_analysis(F).diag_pos(
            message="pattern has no diagonal entry in row {row}"
        )
        for r in range(F.n_rows):
            factor_row(F, r, diag_pos, pivot_tol=self.options.pivot_tol)
            drop_row_fixed_pattern(
                F, r, diag_pos, self.drop_threshold[r], modified=self.options.modified
            )
        return F

    # ------------------------------------------------------------------
    # preconditioner application
    # ------------------------------------------------------------------
    def solve(self, b):
        """Apply the preconditioner: ``x ≈ A⁻¹ b`` via L/U sweeps.

        Backed by a lazily built
        :class:`~repro.core.trisolve.LevelizedTriangularSolver` (rebuilt
        after each :meth:`factor`), whose level-batched sweeps are
        bit-identical to the scalar reference sweeps — so this is both
        the convenient and the fast path.
        """
        if not self._factored:
            raise RuntimeError("call factor() before solve()")
        if self._solver is None:
            self._solver = LevelizedTriangularSolver(self.F)
        bp = np.asarray(b, dtype=np.float64)[self.perm]
        xp = self._solver.solve(bp)
        x = np.empty_like(xp)
        x[self.perm] = xp
        return x

    def build_solver(self):
        """A fast reusable preconditioner apply (vectorized level sweeps).

        Returns a callable ``apply(b) -> x`` backed by
        :class:`~repro.core.trisolve.LevelizedTriangularSolver`: the
        per-level structures come from the pattern-keyed symbolic cache,
        built once and reused across the thousands of preconditioner
        applications a Krylov loop performs (§VI).  Results match
        :meth:`solve` bit-for-bit.
        """
        if not self._factored:
            raise RuntimeError("call factor() before build_solver()")
        lv = LevelizedTriangularSolver(self.F)
        perm, inv = self.perm, self.inv_perm

        def apply(b):
            xp = lv.solve(np.asarray(b, dtype=np.float64)[perm])
            x = np.empty_like(xp)
            x[perm] = xp
            return x

        return apply

    def build_multi_solver(self):
        """A reusable multi-RHS preconditioner apply: ``apply(B) -> X``.

        ``B`` is a 2-D block of shape ``(n, k)``; column ``j`` of the
        result is bit-identical to ``build_solver()(B[:, j])`` — the
        multi-RHS sweeps only amortize per-level dispatch across the
        block (the serving layer's micro-batch contract).
        """
        if not self._factored:
            raise RuntimeError("call factor() before build_multi_solver()")
        lv = LevelizedTriangularSolver(self.F)
        perm = self.perm

        def apply(B):
            Xp = lv.solve_multi(np.asarray(B, dtype=np.float64)[perm, :])
            X = np.empty_like(Xp)
            X[perm, :] = Xp
            return X

        return apply

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def _factor_costs(self):
        if self._costs is None:
            self._costs = row_factor_costs(self.S_perm)
        return self._costs

    def _factor_split_costs(self):
        if self._split_costs is None:
            self._split_costs = row_factor_costs_split(self.S_perm, self.m)
        return self._split_costs

    def _full_level_ptr(self):
        """Level boundaries covering *all* rows (lower rows re-leveled).

        Used by the LS-only simulations, where no rows are excluded: the
        schedule's own level sets already cover every row.
        """
        ls = level_sets_lower(lower_pattern(symmetrize_pattern(self.S_perm)))
        return ls

    def simulate_factor(
        self,
        machine: SimMachine,
        *,
        sync="p2p",
        lower: bool | None = None,
        tasking_runtime="openmp",
        numa_aware_er=False,
        sched_policy="static",
        sched_chunk=1,
        fault_plan=None,
        fault_report=None,
    ) -> SimReport:
        """Modelled factorization time on a simulated machine.

        ``sync`` is "p2p" (Javelin) or "barrier" (traditional level
        scheduling).  ``lower=False`` forces the LS-only configuration
        (every row level-scheduled); ``lower=True``/None uses the
        two-stage schedule with the resolved ER/SR method.
        ``tasking_runtime`` ("openmp" | "lightweight") selects the SR
        task model; ``numa_aware_er`` applies §V's proposed first-touch
        blocking to the ER stage; ``sched_policy``/``sched_chunk``
        select static dealing vs OpenMP DYNAMIC(chunk) self-scheduling
        (the paper's §IV configuration) for the level-scheduled rows.
        ``fault_plan``/``fault_report`` inject machine faults into the
        p2p DES and report what fired (see ``repro.resilience``); for
        straggler slowdowns to apply, construct the machine itself with
        the plan (``SimMachine(spec, p, fault_plan=plan)``).
        """
        flops, touched = self._factor_costs()
        use_lower = (
            self.schedule.n_lower_rows > 0 if lower is None else bool(lower)
        ) and self.schedule.n_lower_rows > 0
        sim_upper = simulate_upper_p2p if sync == "p2p" else simulate_upper_barrier
        upper_kw = (
            {
                "policy": sched_policy,
                "chunk": sched_chunk,
                "fault_plan": fault_plan,
                "fault_report": fault_report,
            }
            if sync == "p2p"
            else {}
        )
        if not use_lower:
            ls = self._full_level_ptr()
            # rows are already in level order, so ls.level_ptr applies
            makespan, _finish, trace = sim_upper(
                self.S_perm, ls.level_ptr, machine, flops, touched, **upper_kw
            )
            return SimReport(
                total=makespan,
                upper=makespan,
                lower=0.0,
                method="none",
                n_threads=machine.n_threads,
                trace=trace,
            )
        method = self._resolve_method(machine.n_threads)
        makespan_u, _finish, trace = sim_upper(
            self.S_perm, self.level_ptr, machine, flops, touched, **upper_kw
        )
        if method == "er" or method == "none":
            total, trace2 = simulate_lower_er(
                self.S_perm,
                self.m,
                machine,
                self._factor_split_costs(),
                start_time=makespan_u,
                numa_aware=numa_aware_er,
            )
        else:
            sr = SegmentedRows.build(
                self.S_perm, self.m, self.level_ptr, tile_size=self.options.tile_size
            )
            total, trace2 = simulate_lower_sr(
                self.S_perm,
                sr,
                machine,
                self._factor_split_costs()[1],
                start_time=makespan_u,
                runtime=tasking_runtime,
            )
        return SimReport(
            total=total,
            upper=makespan_u,
            lower=total - makespan_u,
            method=method,
            n_threads=machine.n_threads,
            trace=trace,
            lower_trace=trace2,
        )

    def simulate_trisolve(self, machine: SimMachine, *, method="two_stage", both=True):
        """Modelled triangular-solve time: 'barrier' | 'p2p' | 'two_stage'."""
        if method == "barrier":
            ls = self._full_level_ptr()
            return simulate_trisolve_barrier(self.S_perm, ls, machine, both=both)
        if method == "p2p":
            ls = self._full_level_ptr()
            return simulate_trisolve_p2p(self.S_perm, ls, machine, both=both)
        if method == "two_stage":
            if self.schedule.n_lower_rows == 0:
                ls = self._full_level_ptr()
                return simulate_trisolve_p2p(self.S_perm, ls, machine, both=both)
            return simulate_trisolve_two_stage(
                self.S_perm,
                self.level_ptr,
                self.m,
                machine,
                tile_size=self.options.tile_size,
                both=both,
            )
        raise ValueError(f"unknown trisolve method {method!r}")

    # ------------------------------------------------------------------
    def stats(self):
        """Structural summary of the schedule (for reports and tests)."""
        if not self._ready:
            raise RuntimeError("call setup(A) first")
        return {
            "n": self.S_perm.n_rows,
            "nnz_pattern": self.S_perm.nnz,
            "n_levels": self.schedule.levels.n_levels,
            "n_upper_levels": self.schedule.n_upper_levels,
            "n_lower_rows": self.schedule.n_lower_rows,
            "lower_method": self.schedule.chosen_lower_method,
        }
