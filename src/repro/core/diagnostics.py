"""Factorization diagnostics: quality, conditioning, soft-error checks.

§III motivates up-looking LU partly because it "allows for local
estimates of resilience from soft-errors and the convergence rate":
each row of the factor is a pure function of the rows it depends on, so
a row can be *locally* re-derived and checked, and per-row quantities
bound how good the preconditioner will be.  This module provides:

* :func:`row_residual_norms` — per-row ‖(LU − A)[i, :]‖, the local
  convergence-rate estimate (zero on the pattern for exact ILU; grows
  with dropping);
* :func:`pivot_growth` — max |factor| / max |A| and the smallest pivot,
  the standard breakdown early-warnings for no-pivoting factorizations;
* :func:`condest_preconditioned` — a cheap randomized estimate of
  ‖M⁻¹A − I‖, predicting Krylov iteration counts;
* :func:`verify_row` / :func:`scan_for_corruption` — recompute a row
  from its dependencies and compare against the stored values, the
  soft-error detector the up-looking structure enables.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.pattern import split_lu
from .iluk import _diag_positions, factor_row

__all__ = [
    "row_residual_norms",
    "pivot_growth",
    "condest_preconditioned",
    "verify_row",
    "scan_for_corruption",
]


def row_residual_norms(A: CSRMatrix, F: CSRMatrix, *, on_pattern_only=True):
    """Per-row 2-norms of (LU − A), the local quality estimate.

    ``on_pattern_only`` restricts the residual to the stored pattern of
    A (where exact ILU makes it identically zero); the full residual
    includes the fill the incomplete factorization discarded.
    """
    L, U = split_lu(F)
    Ld, Ud, Ad = L.to_dense(), U.to_dense(), A.to_dense()
    R = Ld @ Ud - Ad
    if on_pattern_only:
        R = np.where(Ad != 0, R, 0.0)
    return np.sqrt(np.sum(R * R, axis=1))


def pivot_growth(A: CSRMatrix, F: CSRMatrix, *, tiny_tol=None):
    """Growth statistics of the factorization.

    Returns a dict with the element growth factor ``max|F| / max|A|``,
    the smallest ``|pivot|``, the pivot spread
    ``max|pivot| / min|pivot|``, and ``n_tiny_pivots`` — large growth,
    tiny pivots or non-finite pivots flag the no-pivoting factorization
    as unreliable before a solve is attempted.

    Robustness contract: every statistic is well defined for empty,
    zero, negative and non-finite diagonals.  ``min_pivot`` and
    ``pivot_spread`` are computed over ``|pivot|`` (sign discarded) and
    ignore non-finite entries, which are counted separately in
    ``n_nonfinite_pivots``; a zero or absent smallest pivot makes the
    spread ``inf``.  ``tiny_tol`` sets the threshold for
    ``n_tiny_pivots`` (default: ``1e-12 · max|F|``).
    """
    d = np.abs(np.asarray(F.diagonal(), dtype=np.float64))
    max_a = float(np.abs(A.data).max()) if A.nnz else 0.0
    with np.errstate(invalid="ignore"):
        max_f = float(np.nanmax(np.abs(F.data))) if F.nnz else 0.0
    if not np.isfinite(max_f):
        max_f = np.inf
    finite = d[np.isfinite(d)]
    n_nonfinite = int(d.size - finite.size)
    min_pivot = float(finite.min()) if finite.size else 0.0
    max_pivot = float(finite.max()) if finite.size else 0.0
    if tiny_tol is None:
        tiny_tol = 1e-12 * max_f if np.isfinite(max_f) else 0.0
    n_tiny = int(np.count_nonzero(finite <= tiny_tol)) + n_nonfinite
    if finite.size and min_pivot > 0.0:
        spread = max_pivot / min_pivot
    else:
        spread = np.inf
    if max_a > 0.0:
        growth = max_f / max_a
    else:
        growth = 0.0 if max_f == 0.0 else np.inf
    return {
        "growth": growth,
        "min_pivot": min_pivot,
        "pivot_spread": float(spread),
        "n_tiny_pivots": n_tiny,
        "n_nonfinite_pivots": n_nonfinite,
    }


def condest_preconditioned(A: CSRMatrix, apply_M, *, samples=8, seed=0):
    """Randomized estimate of ‖M⁻¹A − I‖_F / √n.

    Probes with Gaussian vectors: E‖(M⁻¹A − I)z‖² = ‖M⁻¹A − I‖_F², so
    the root-mean of a few probes estimates the deviation of the
    preconditioned operator from the identity — small values predict
    fast Krylov convergence.
    """
    rng = np.random.default_rng(seed)
    n = A.n_rows
    acc = 0.0
    for _ in range(samples):
        z = rng.standard_normal(n)
        w = apply_M(A.matvec(z)) - z
        acc += float(w @ w) / float(z @ z)
    return float(np.sqrt(acc / samples))


def verify_row(F: CSRMatrix, A: CSRMatrix, r, *, atol=0.0, rtol=1e-12):
    """Recompute row ``r`` of the factor from its dependencies.

    Up-looking structure: row r of F is a deterministic function of
    A[r, :] and the *already stored* earlier rows of F, so it can be
    re-derived in O(row work) without refactoring anything else.
    Returns True when the stored row matches the recomputation — a
    mismatch means the stored row was corrupted after it was computed
    (e.g. by a soft error).
    """
    scratch = F.copy()
    # reset row r to A's values on the pattern
    lo, hi = int(F.indptr[r]), int(F.indptr[r + 1])
    cols = F.indices[lo:hi]
    a_cols, a_vals = A.row(r)
    scratch.data[lo:hi] = 0.0
    pos = np.searchsorted(cols, a_cols)
    ok = (pos < cols.shape[0]) & (cols[np.minimum(pos, cols.shape[0] - 1)] == a_cols)
    scratch.data[lo + pos[ok]] = a_vals[ok]
    diag_pos = _diag_positions(scratch)
    factor_row(scratch, r, diag_pos)
    return np.allclose(scratch.data[lo:hi], F.data[lo:hi], atol=atol, rtol=rtol)


def scan_for_corruption(F: CSRMatrix, A: CSRMatrix, *, rtol=1e-12):
    """Verify every row; return the list of rows that fail.

    Note the directionality: a flipped bit in row r makes row r fail its
    own check, and may also make *dependent* rows fail (they were
    computed from good values, but the recomputation now reads the
    corrupted row).  The first failing row localizes the error.
    """
    bad = []
    for r in range(F.n_rows):
        if not verify_row(F, A, r, rtol=rtol):
            bad.append(r)
    return bad
