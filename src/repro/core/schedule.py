"""The two-stage partition: upper level scheduling vs. lower stage.

§III-A: Javelin applies level scheduling only to levels with "a very
large number of rows so that no thread will run out of work"; levels
that are too small or whose rows are too dense relative to the matrix
average are moved to the end of the matrix and handled by the second
(lower) stage.  Moving a *middle* level would drag every dependent row
along with it, so only a contiguous suffix of levels is eligible —
small levels sandwiched between large ones stay in the upper stage,
which point-to-point synchronization tolerates (Fig. 3).

The partition is computed on the level sets of ``lower(A + Aᵀ)`` (or
``lower(A)``; then Segmented-Rows becomes illegal, §III-B) and produces:

* the list of upper-stage levels (original row ids per level);
* the rows moved to the lower stage (a suffix of the level ordering);
* the full *level permutation* — upper rows grouped by level, lower
  rows at the end — which is the ordering the matrix is copied into;
* the automatic Even-Rows vs. Segmented-Rows choice: ER needs more
  excluded rows than threads so imbalance averages out; SR handles the
  few-rows/imbalanced case (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix
from ..ordering.levelsets import LevelSets, level_schedule

__all__ = ["ScheduleOptions", "TwoStageSchedule", "build_schedule"]


@dataclass(frozen=True)
class ScheduleOptions:
    """User-facing knobs of the two-stage partition (§III-A options).

    Attributes
    ----------
    min_rows_per_level:
        A level in the eligible suffix moves to the lower stage when it
        has fewer rows than this (the sensitivity parameter α of
        Table III's R-16/24/32 columns).
    density_factor:
        A level also moves when the mean nonzeros-per-row of its rows
        exceeds ``density_factor ×`` the matrix's average row density.
    tail_fraction:
        Relative-location option: only levels in the last
        ``tail_fraction`` of the level ordering are eligible to move.
    use_ata:
        Level-schedule on ``lower(A + Aᵀ)`` (default) or ``lower(A)``.
    lower_method:
        "auto" | "er" | "sr" | "none".  "none" keeps everything in the
        upper stage (the paper's LS-only configuration).
    """

    min_rows_per_level: int = 16
    density_factor: float = 4.0
    tail_fraction: float = 0.5
    use_ata: bool = True
    lower_method: str = "auto"


@dataclass
class TwoStageSchedule:
    """Result of the partition, in original row ids."""

    levels: LevelSets  # full level structure (before the split)
    upper_levels: list  # list of np.ndarray of row ids, level order
    lower_rows: np.ndarray  # row ids moved to the end, level order
    options: ScheduleOptions
    chosen_lower_method: str = "none"

    @property
    def n_upper_levels(self):
        return len(self.upper_levels)

    @property
    def n_upper_rows(self):
        return int(sum(len(l) for l in self.upper_levels))

    @property
    def n_lower_rows(self):
        return int(self.lower_rows.shape[0])

    def permutation(self):
        """Gather permutation: upper rows by level, then lower rows."""
        parts = [np.asarray(l, dtype=np.int64) for l in self.upper_levels]
        parts.append(np.asarray(self.lower_rows, dtype=np.int64))
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def upper_level_ptr(self):
        """Level boundaries in the *permuted* row numbering."""
        sizes = [len(l) for l in self.upper_levels]
        ptr = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=ptr[1:])
        return ptr

    def validate(self):
        perm = self.permutation()
        n = self.levels.n_rows
        if perm.shape[0] != n or np.unique(perm).shape[0] != n:
            raise AssertionError("schedule permutation is not a bijection")
        # every upper level must consist of rows of one original level
        for i, rows in enumerate(self.upper_levels):
            lv = self.levels.level_of[np.asarray(rows, dtype=np.int64)]
            if np.unique(lv).shape[0] > 1:
                raise AssertionError(f"upper level {i} mixes original levels")
        # lower rows must be a dependency-closed suffix: no upper row may
        # depend on a lower row, which holds iff lower rows form a suffix
        # of the level ordering.
        if self.n_lower_rows:
            min_lower_level = int(self.levels.level_of[self.lower_rows].min())
            for rows in self.upper_levels:
                if len(rows) and int(self.levels.level_of[np.asarray(rows)].max()) >= min_lower_level:
                    lvs = {int(self.levels.level_of[r]) for r in self.lower_rows}
                    for rows2 in self.upper_levels:
                        bad = [r for r in rows2 if int(self.levels.level_of[r]) in lvs]
                        if bad:
                            raise AssertionError(
                                "upper rows share a level with lower rows"
                            )
        return True


def _count_tail_moves(ls: LevelSets, row_nnz, avg_rd, opts: ScheduleOptions):
    """Which trailing levels move to the lower stage."""
    n_levels = ls.n_levels
    first_eligible = int(np.floor(n_levels * (1.0 - opts.tail_fraction)))
    move = np.zeros(n_levels, dtype=bool)
    for l in range(n_levels - 1, first_eligible - 1, -1):
        rows = ls.level_rows(l)
        small = rows.shape[0] < opts.min_rows_per_level
        dense = (
            avg_rd > 0
            and rows.shape[0] > 0
            and float(row_nnz[rows].mean()) > opts.density_factor * avg_rd
        )
        if small or dense:
            move[l] = True
        else:
            break  # suffix only: stop at the first level that stays
    return move


def build_schedule(
    A: CSRMatrix,
    opts: ScheduleOptions | None = None,
    *,
    n_threads: int | None = None,
    levels: LevelSets | None = None,
) -> TwoStageSchedule:
    """Compute the two-stage schedule for a matrix.

    Parameters
    ----------
    A:
        Square CSR matrix (any preordering already applied).
    opts:
        Partition options; defaults reproduce the paper's configuration.
    n_threads:
        Used by the automatic ER/SR choice ("ER depends on the number of
        rows excluded ... being greater than the number of desired
        threads").  ``None`` defers the choice (method = "auto" stays).
    levels:
        Precomputed level sets (to avoid recomputation in sweeps).
    """
    opts = opts or ScheduleOptions()
    ls = levels if levels is not None else level_schedule(A, use_ata=opts.use_ata)
    row_nnz = A.row_nnz()
    avg_rd = A.row_density()

    if opts.lower_method == "none":
        move = np.zeros(ls.n_levels, dtype=bool)
    else:
        move = _count_tail_moves(ls, row_nnz, avg_rd, opts)

    upper_levels = [ls.level_rows(l).copy() for l in range(ls.n_levels) if not move[l]]
    lower_parts = [ls.level_rows(l) for l in range(ls.n_levels) if move[l]]
    lower_rows = (
        np.concatenate(lower_parts).astype(np.int64)
        if lower_parts
        else np.empty(0, dtype=np.int64)
    )

    method = opts.lower_method
    if method == "auto":
        if lower_rows.shape[0] == 0:
            method = "none"
        elif n_threads is not None and lower_rows.shape[0] >= n_threads:
            # enough rows for per-thread averaging -> Even-Rows, unless
            # the rows are badly imbalanced in nnz, where SR's tiles win
            nnz_lower = row_nnz[lower_rows]
            imbalance = float(nnz_lower.max()) / max(float(nnz_lower.mean()), 1.0)
            method = "sr" if imbalance > 8.0 else "er"
        elif n_threads is not None:
            method = "sr"
        # n_threads unknown: leave as "auto" for the executor to resolve
    if method == "sr" and not opts.use_ata:
        raise ValueError(
            "Segmented-Rows requires the lower(A + A^T) level pattern (use_ata=True)"
        )

    sched = TwoStageSchedule(
        levels=ls,
        upper_levels=upper_levels,
        lower_rows=lower_rows,
        options=opts,
        chosen_lower_method=method,
    )
    sched.validate()
    return sched


def rows_moved_for_alpha(A: CSRMatrix, alphas=(16, 24, 32), *, use_ata=True, levels=None):
    """Table III's R-α: rows moved to the end per sensitivity value α."""
    out = {}
    ls = levels if levels is not None else level_schedule(A, use_ata=use_ata)
    for a in alphas:
        opts = ScheduleOptions(min_rows_per_level=a, use_ata=use_ata)
        sched = build_schedule(A, opts, levels=ls)
        out[a] = sched.n_lower_rows
    return out
