"""Fault plans: seeded, machine-level failure injection.

A :class:`FaultPlan` is a frozen description of *what goes wrong* on a
run, consumed both by the simulated machine (``SimMachine``,
``simulate_task_graph``, the p2p DES kernels) and by the real threaded
runtime (``repro.runtime``).  Everything is derived from an explicit
seed, so a faulty run is exactly reproducible — the property the
bit-identity tests rely on: injecting faults may slow a run down
(simulated time grows, the watchdog fires) but must never change the
numerical result.

Fault classes (``docs/resilience.md`` has the full schema):

* **stragglers** — per-thread rate multipliers ≥ 1: thread t computes
  ``rate(t)×`` slower (its flop and bandwidth rates are divided by the
  multiplier).  Models a core sharing its tile with a noisy neighbor,
  or a downclocked AVX-heavy core.
* **spin faults** — rows whose cross-thread dependency wait hits a
  spin-lock timeout and pays ``spin_fault_penalty`` before retrying.
* **dropped notifications** — (thread, row) publishes that are lost.
  Because progress counters are monotonic, a dropped publish is healed
  by the *next* publish of the same thread; a dropped *last* publish
  stalls every waiter until the watchdog fires.
* **watchdog timeout** — how long a consumer waits on a stalled
  dependency before giving up and falling back to the barrier
  (CSR-LS) schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultPlan", "FaultRunReport", "drop_last_publish"]


def drop_last_publish(thread_of, thread, *, k=1):
    """The last ``k`` publishes of ``thread``, as ``(thread, row)`` pairs.

    Dropping a thread's *trailing* publishes is the structural way to
    guarantee a stall: monotonic counters mean any earlier drop is
    healed by the thread's next surviving publish, but a lost last
    notification has no cover, so every consumer waiting on it spins
    until the watchdog fires.  Feed the result to
    ``FaultPlan(dropped=...)``.
    """
    rows = np.nonzero(np.asarray(thread_of) == int(thread))[0]
    return frozenset((int(thread), int(r)) for r in rows[-int(k):]) if k else frozenset()


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of injected machine faults.

    ``stragglers`` maps thread id → rate multiplier (≥ 1.0);
    ``spin_faults`` is a set of row ids; ``dropped`` a set of
    ``(thread, row)`` publish events to lose.  ``real_sleep_per_row``
    only affects the real threaded runtime: a straggler thread sleeps
    ``real_sleep_per_row · (rate − 1)`` wall-clock seconds per row.
    """

    seed: int = 0
    stragglers: dict = field(default_factory=dict)
    spin_faults: frozenset = frozenset()
    dropped: frozenset = frozenset()
    watchdog_timeout: float = 1e-3
    spin_fault_penalty: float = 1e-6
    real_sleep_per_row: float = 0.0

    @classmethod
    def seeded(
        cls,
        n_threads,
        *,
        seed=0,
        n_stragglers=1,
        slowdown=4.0,
        n_rows=0,
        spin_fault_frac=0.0,
        dropped=(),
        watchdog_timeout=1e-3,
        real_sleep_per_row=0.0,
    ):
        """Draw a reproducible plan from ``seed``.

        Picks ``n_stragglers`` distinct threads and slows each by
        ``slowdown``; marks ``spin_fault_frac`` of ``n_rows`` rows as
        spin-faulty.  ``dropped`` passes through explicit
        ``(thread, row)`` pairs (dropping is too structural to sample
        blindly — see :func:`drop_last_publish`).
        """
        rng = np.random.default_rng(seed)
        n_stragglers = min(int(n_stragglers), int(n_threads))
        picks = rng.choice(n_threads, size=n_stragglers, replace=False)
        stragglers = {int(t): float(slowdown) for t in picks}
        spin = frozenset()
        if n_rows and spin_fault_frac > 0.0:
            k = max(1, int(round(spin_fault_frac * n_rows)))
            spin = frozenset(int(r) for r in rng.choice(n_rows, size=min(k, n_rows), replace=False))
        return cls(
            seed=int(seed),
            stragglers=stragglers,
            spin_faults=spin,
            dropped=frozenset((int(t), int(r)) for t, r in dropped),
            watchdog_timeout=float(watchdog_timeout),
            real_sleep_per_row=float(real_sleep_per_row),
        )

    def rate(self, thread) -> float:
        """Slowdown multiplier of ``thread`` (1.0 = healthy)."""
        r = float(self.stragglers.get(int(thread), 1.0))
        if r < 1.0:
            raise ValueError(f"straggler rate for thread {thread} must be >= 1, got {r}")
        return r

    def is_dropped(self, thread, row) -> bool:
        """True when ``thread``'s publish of ``row`` is lost."""
        return (int(thread), int(row)) in self.dropped

    def with_(self, **kw):
        from dataclasses import replace

        return replace(self, **kw)


@dataclass
class FaultRunReport:
    """What actually happened on one fault-injected run.

    Filled in by the runtime/simulator that consumed the plan:
    ``watchdog_engaged`` — a stalled dependency wait timed out and the
    run fell back to the barrier schedule; ``n_fallback_rows`` — rows
    completed by the sequential fallback; ``stalls`` — (consumer
    thread, producer thread, row) triples that timed out;
    ``dropped_events`` — publishes actually suppressed.
    """

    watchdog_engaged: bool = False
    n_fallback_rows: int = 0
    stalls: list = field(default_factory=list)
    dropped_events: int = 0

    def to_dict(self):
        return {
            "watchdog_engaged": self.watchdog_engaged,
            "n_fallback_rows": self.n_fallback_rows,
            "stalls": [tuple(int(v) for v in s) for s in self.stalls],
            "dropped_events": self.dropped_events,
        }
