"""Breakdown-safe factorization: the shift/fallback retry chain.

Javelin does not pivot (§III), so a zero, tiny or non-finite pivot
aborts the factorization with a structured
:class:`~repro.core.breakdown.FactorizationBreakdown` instead of
silently dividing through.  :class:`ResilientFactor` turns that abort
into a *driver loop* that always terminates with a usable
preconditioner:

1. **Shift escalation** (Manteuffel).  Retry the same factorization on
   ``A + α·diag(rowscale)`` with ``α ← max(2α, α₀)``, up to
   ``max_shift_attempts`` times.  A small shift preserves most of the
   preconditioner quality while lifting the offending pivots.
2. **Variant degradation.**  When shifting is exhausted the chain
   degrades: ILU(k, τ) → ILU(0) → MILU → block-Jacobi → Jacobi.  Each
   step trades preconditioner quality for robustness; the final Jacobi
   stage cannot fail (zero/non-finite diagonal entries are replaced by
   1.0).
3. **Validation.**  A candidate only wins if its factor values are
   finite *and* a probe apply returns finite values — a factorization
   can succeed arithmetically yet be poisoned (e.g. overflow without
   Inf pivots on the diagonal).

Every attempt — failed or not — is recorded in a
:class:`ResilienceReport`, so a production run can log *why* the
preconditioner it ended up with is the one it has.

The resulting object plugs into every Krylov solver via
``as_preconditioner`` and supports the mid-solve ``resetup()``
protocol: when a guarded apply observes non-finite output, the solver
asks the factor to advance its chain once and continue with the next,
more robust variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.block_jacobi import BlockJacobi
from ..core.breakdown import FactorizationBreakdown
from ..core.ilut import ilut_factor
from ..core.javelin import JavelinILU, JavelinOptions
from ..core.trisolve import LevelizedTriangularSolver
from ..kernels.cache import default_cache, pattern_fingerprint
from ..obs import spans as _spans
from ..sparse.pattern import has_full_diagonal

__all__ = [
    "ExponentialBackoff",
    "RetryPolicy",
    "AttemptRecord",
    "ResilienceReport",
    "ResilientFactor",
]


@dataclass(frozen=True)
class ExponentialBackoff:
    """Seeded exponential backoff: ``delay(i) = base·factorⁱ·(1 + jitter·u)``.

    The one backoff implementation shared by every retry loop in the
    stack — the cluster router's hedged re-dispatches and the
    :class:`ResilientFactor` chain's virtual retry charges both draw
    from here, so "how long do we wait before trying again" has a
    single seeded answer.  ``u`` is a uniform draw in ``[0, 1)``
    derived from ``(jitter_seed, attempt)`` alone, so ``delay(i)`` is a
    pure function — independent of call order, process, or how many
    other backoffs exist — which is what keeps the virtual-clock
    replays bit-identical.
    """

    base: float = 1e-3
    factor: float = 2.0
    jitter: float = 0.1
    jitter_seed: int = 0
    max_delay: float = float("inf")

    def __post_init__(self):
        if self.base < 0.0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt) -> float:
        """Deterministic delay before retry number ``attempt`` (0-based)."""
        attempt = int(attempt)
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = self.base * self.factor**attempt
        if self.jitter > 0.0:
            u = float(np.random.default_rng((self.jitter_seed, attempt)).random())
            raw *= 1.0 + self.jitter * u
        return min(raw, self.max_delay)

    def delays(self, n) -> list:
        """The first ``n`` delays (``[delay(0), …, delay(n-1)]``)."""
        return [self.delay(i) for i in range(int(n))]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retry chain.

    ``pivot_floor`` is the tiny-pivot threshold handed to every
    factorization attempt (pivots with ``|p| ≤ pivot_floor`` raise
    rather than divide); ``shift0`` is the initial Manteuffel shift
    α₀, escalated as ``α ← max(2α, α₀)`` for at most
    ``max_shift_attempts`` attempts per factorization variant.
    ``milu_tau`` parameterizes the MILU fallback and ``block_size`` the
    block-Jacobi fallback.
    """

    pivot_floor: float = 1e-12
    shift0: float = 1e-3
    max_shift_attempts: int = 6
    milu_tau: float = 1e-3
    block_size: int = 32

    def with_(self, **kw):
        """A copy with some knobs replaced (the serve layer's deadline
        demotion shrinks ``max_shift_attempts`` under a tight budget)."""
        from dataclasses import replace

        return replace(self, **kw)

    def backoff(self, base=1e-3, factor=2.0, jitter_seed=0, *, jitter=0.1,
                max_delay=float("inf")) -> ExponentialBackoff:
        """The policy's seeded exponential backoff schedule.

        One implementation for every retry loop: the cluster router's
        hedge/failover re-dispatch delays and the virtual charge a
        :class:`ResilientFactor` retry ladder accrues
        (:attr:`ResilienceReport.backoff_total`) both come from the
        :class:`ExponentialBackoff` built here.
        """
        return ExponentialBackoff(
            base=float(base),
            factor=float(factor),
            jitter=float(jitter),
            jitter_seed=int(jitter_seed),
            max_delay=float(max_delay),
        )


@dataclass
class AttemptRecord:
    """One entry of the attempt history."""

    variant: str
    shift: float
    ok: bool
    detail: str = ""
    row: int | None = None
    kind: str | None = None
    #: seeded virtual delay charged before the *next* retry (0 on a win)
    backoff: float = 0.0

    def to_dict(self):
        return {
            "variant": self.variant,
            "shift": self.shift,
            "ok": self.ok,
            "detail": self.detail,
            "row": self.row,
            "kind": self.kind,
            "backoff": self.backoff,
        }


@dataclass
class ResilienceReport:
    """Full history of how the final preconditioner was obtained."""

    attempts: list = field(default_factory=list)
    final_variant: str | None = None
    final_shift: float = 0.0
    resetups: int = 0
    cache: dict = field(default_factory=dict)

    def record(self, attempt: AttemptRecord):
        """Append one attempt and mirror it as a ``resilience.attempt``
        obs instant (free when tracing is off)."""
        self.attempts.append(attempt)
        _spans.instant(
            "resilience.attempt",
            cat="resilience",
            variant=attempt.variant,
            shift=attempt.shift,
            ok=attempt.ok,
            detail=attempt.detail,
        )

    @property
    def n_attempts(self):
        return len(self.attempts)

    @property
    def n_breakdowns(self):
        return sum(1 for a in self.attempts if not a.ok)

    @property
    def backoff_total(self):
        """Virtual retry-delay charge accrued by failed attempts.

        Serving layers add this to a cold build's cost so a
        breakdown-riddled setup pays for its retries on the virtual
        clock too (same :meth:`RetryPolicy.backoff` schedule the
        cluster router uses for hedging).
        """
        return sum(a.backoff for a in self.attempts)

    def to_dict(self):
        return {
            "attempts": [a.to_dict() for a in self.attempts],
            "final_variant": self.final_variant,
            "final_shift": self.final_shift,
            "resetups": self.resetups,
            "cache": dict(self.cache),
        }

    def __repr__(self):
        return (
            f"ResilienceReport(final={self.final_variant!r} shift={self.final_shift:g}, "
            f"{self.n_attempts} attempts, {self.n_breakdowns} breakdowns, "
            f"{self.resetups} resetups)"
        )


def _row_scales(A):
    """Per-row magnitude, the shift scaling (cf. ``ichol_shifted``)."""
    scale = np.empty(A.n_rows)
    for r in range(A.n_rows):
        _, vals = A.row(r)
        scale[r] = float(np.abs(vals).max()) if vals.size else 1.0
    scale[scale == 0.0] = 1.0
    return scale


def _shifted(A, alpha, base_diag, row_scale):
    """``A`` with its diagonal replaced by ``base_diag + α·row_scale``."""
    B = A.copy()
    for r in range(A.n_rows):
        lo = int(B.indptr[r])
        cols = B.indices[lo : int(B.indptr[r + 1])]
        p = int(np.searchsorted(cols, r))
        B.data[lo + p] = base_diag[r] + alpha * row_scale[r]
    return B


class ResilientFactor:
    """Breakdown-safe preconditioner driver.

    Usage::

        rf = ResilientFactor(JavelinOptions(fill_level=1)).setup(A)
        res = gmres(A, b, M=rf)          # guarded apply + resetup protocol
        print(rf.report)                 # full attempt history

    ``setup`` always succeeds: the chain ends in plain Jacobi, which
    cannot break down.  ``report.final_variant`` names what you got.
    """

    #: degradation order; "primary" is the user's requested ILU(k, τ)
    CHAIN = ("primary", "ilu0", "milu", "block_jacobi", "jacobi")

    def __init__(self, options: JavelinOptions | None = None, policy: RetryPolicy | None = None):
        self.options = options or JavelinOptions()
        self.policy = policy or RetryPolicy()
        self.report = ResilienceReport()
        self._ready = False
        self._apply = None
        self.ilu = None  # the JavelinILU behind an ILU-variant win, if any
        # per-variant JavelinILU instances, so shift retries and
        # value-only refactor()s reuse one symbolic setup per variant
        self._ilu_cache: dict = {}
        self.n_refactors = 0
        # the chain's virtual retry-delay schedule (shared implementation
        # with the cluster router's hedging — see RetryPolicy.backoff)
        self._backoff = self.policy.backoff()

    def _record_failure(self, variant, shift, **kw):
        """Record a failed attempt, charging its seeded backoff delay."""
        self.report.record(
            AttemptRecord(
                variant,
                shift,
                False,
                backoff=self._backoff.delay(self.report.n_breakdowns),
                **kw,
            )
        )

    # ------------------------------------------------------------------
    def setup(self, A):
        """Run the retry chain until a validated preconditioner wins."""
        key = pattern_fingerprint(A)
        if getattr(self, "_pattern_key", None) != key:
            self._ilu_cache.clear()  # symbolic reuse is per pattern
        self._pattern_key = key
        self.A = A
        self._base_diag = A.diagonal()
        self._row_scale = _row_scales(A)
        self._structural_diag = has_full_diagonal(A)
        self.report = ResilienceReport()
        self._stage = 0
        self._advance()
        self.report.cache = default_cache().stats()
        self._ready = True
        return self

    def refactor(self, A):
        """Value-only re-setup: same pattern, new values, symbolic reuse.

        The regime Javelin's setup amortization actually targets —
        Newton loops and implicit time-steppers — re-factors one
        sparsity pattern for thousands of steps with drifting values.
        This re-runs the retry chain against the new values while every
        ILU variant reuses its cached :class:`JavelinILU` symbolic
        setup (fill pattern, level schedule, permutation — all pure
        functions of the pattern), so only the numeric phase is paid.

        Contract: the winning factor, the applies, and the attempt
        history are **bitwise identical** to
        ``ResilientFactor(options, policy).setup(A)`` on the same
        values — value-only reuse moves cost, never bits.  Raises
        ``ValueError`` when ``A``'s pattern differs from the setup
        pattern (that needs a real :meth:`setup`).
        """
        if not self._ready:
            raise RuntimeError("call setup(A) before refactor()")
        key = pattern_fingerprint(A)
        if key != self._pattern_key:
            raise ValueError(
                "refactor() requires the setup sparsity pattern "
                f"(got {key[:12]}, setup was {self._pattern_key[:12]}); "
                "call setup() for a new pattern"
            )
        self.A = A
        self._base_diag = A.diagonal()
        self._row_scale = _row_scales(A)
        self.report = ResilienceReport()
        self._stage = 0
        self._advance()
        self.report.cache = default_cache().stats()
        self.n_refactors += 1
        _spans.instant(
            "resilience.refactor",
            cat="resilience",
            variant=self.report.final_variant,
            n_refactors=self.n_refactors,
        )
        return self

    # ------------------------------------------------------------------
    # chain stages
    # ------------------------------------------------------------------
    def _validate(self, apply, data=None):
        """Failure detail, or None when the candidate is usable."""
        if data is not None and not np.all(np.isfinite(data)):
            return "non-finite factor entries"
        probe = apply(np.ones(self.A.n_rows))
        if not np.all(np.isfinite(probe)):
            return "non-finite probe apply"
        return None

    def _try_factorization(self, variant, build):
        """Shift-escalation loop around one factorization variant.

        ``build(B)`` factors the (possibly shifted) matrix and returns
        ``(apply, data, ilu_or_none)``; raises FactorizationBreakdown on
        a bad pivot.  Returns True when a validated candidate won.
        """
        if not self._structural_diag:
            self._record_failure(variant, 0.0, detail="missing structural diagonal")
            return False
        pol = self.policy
        alpha = 0.0
        for _ in range(pol.max_shift_attempts + 1):
            B = (
                self.A
                if alpha == 0.0
                else _shifted(self.A, alpha, self._base_diag, self._row_scale)
            )
            try:
                apply, data, ilu = build(B)
            except FactorizationBreakdown as e:
                self._record_failure(variant, alpha, detail=str(e), row=e.row, kind=e.kind)
            else:
                why = self._validate(apply, data)
                if why is None:
                    self.report.record(AttemptRecord(variant, alpha, True))
                    self.report.final_variant = variant
                    self.report.final_shift = alpha
                    self._apply = apply
                    self.ilu = ilu
                    return True
                self._record_failure(variant, alpha, detail=why)
            alpha = max(2.0 * alpha, pol.shift0)
        return False

    def _ilu_build(self, variant, opts, B):
        """Factor ``B`` with ``opts``, reusing the variant's symbolic setup.

        Every matrix one :class:`ResilientFactor` factors shares the
        setup pattern (Manteuffel shifts only rewrite the structurally
        present diagonal; :meth:`refactor` requires it), and a
        :class:`JavelinILU`'s setup products are pure functions of that
        pattern — so each chain variant keeps one instance and later
        builds run the value-only numeric phase.  Bit-identical to a
        fresh ``setup(B).factor()`` by the :meth:`JavelinILU.refactor`
        contract.
        """
        ilu = self._ilu_cache.get(variant)
        if ilu is not None and ilu.options == opts:
            res = ilu.refactor(B)
        else:
            ilu = JavelinILU(opts).setup(B)
            res = ilu.factor()
            self._ilu_cache[variant] = ilu
        return ilu.build_solver(), res.F.data, ilu

    def _build_primary(self, B):
        opts = self.options.with_(pivot_tol=max(self.options.pivot_tol, self.policy.pivot_floor))
        return self._ilu_build("primary", opts, B)

    def _build_ilu0(self, B):
        opts = self.options.with_(
            fill_level=0,
            tau=0.0,
            modified=False,
            pivot_tol=max(self.options.pivot_tol, self.policy.pivot_floor),
        )
        return self._ilu_build("ilu0", opts, B)

    def _build_milu(self, B):
        F = ilut_factor(
            B, tau=self.policy.milu_tau, modified=True, pivot_tol=self.policy.pivot_floor
        )
        return LevelizedTriangularSolver(F).solve, F.data, None

    def _try_block_jacobi(self):
        try:
            bj = BlockJacobi(self.policy.block_size).setup(self.A)
        except Exception as e:  # singular blocks already regularized; be safe
            self._record_failure("block_jacobi", 0.0, detail=str(e))
            return False
        why = self._validate(bj.solve)
        if why is not None:
            self._record_failure("block_jacobi", 0.0, detail=why)
            return False
        self.report.record(AttemptRecord("block_jacobi", 0.0, True))
        self.report.final_variant = "block_jacobi"
        self.report.final_shift = 0.0
        self._apply = bj.solve
        self.ilu = None
        return True

    def _build_jacobi(self):
        d = np.array(self._base_diag, dtype=np.float64, copy=True)
        bad = ~np.isfinite(d) | (d == 0.0)
        d[bad] = 1.0
        inv = 1.0 / d

        def apply(r):
            return np.asarray(r, dtype=np.float64) * inv

        self.report.record(
            AttemptRecord("jacobi", 0.0, True, detail=f"{int(bad.sum())} guarded diagonal entries")
        )
        self.report.final_variant = "jacobi"
        self.report.final_shift = 0.0
        self._apply = apply
        self.ilu = None
        return True

    def _primary_is_ilu0(self):
        return self.options.fill_level == 0 and self.options.tau == 0.0 and not self.options.modified

    def _advance(self):
        """Walk the chain from the current stage until a variant wins."""
        while self._stage < len(self.CHAIN):
            variant = self.CHAIN[self._stage]
            self._stage += 1
            if variant == "primary":
                if self._try_factorization("primary", self._build_primary):
                    return
            elif variant == "ilu0":
                if self._primary_is_ilu0():
                    continue  # identical to primary; don't retry the same thing
                if self._try_factorization("ilu0", self._build_ilu0):
                    return
            elif variant == "milu":
                if self._try_factorization("milu", self._build_milu):
                    return
            elif variant == "block_jacobi":
                if self._try_block_jacobi():
                    return
            else:
                self._build_jacobi()
                return
        raise AssertionError("unreachable: the jacobi stage always succeeds")

    # ------------------------------------------------------------------
    # preconditioner protocol
    # ------------------------------------------------------------------
    def build_solver(self):
        """The current apply (consumed by ``as_preconditioner``)."""
        if not self._ready:
            raise RuntimeError("call setup(A) first")
        return self._apply

    def solve(self, b):
        """Apply the current preconditioner: ``z = M⁻¹ b``."""
        if not self._ready:
            raise RuntimeError("call setup(A) first")
        return self._apply(b)

    def build_multi_solver(self):
        """A multi-RHS apply ``apply(B) -> Z`` on a 2-D block ``(n, k)``.

        When the chain's winner is an ILU variant, the block goes
        through the multi-RHS level-batched sweeps
        (:meth:`~repro.core.javelin.JavelinILU.build_multi_solver`) —
        bit-identical per column to :meth:`solve` while amortizing the
        per-level dispatch across the batch.  Fallback variants
        (MILU/block-Jacobi/Jacobi) apply column-by-column, which is
        trivially identical.  Rebuild after a :meth:`resetup` — the
        returned callable is pinned to the current variant.
        """
        if not self._ready:
            raise RuntimeError("call setup(A) first")
        if self.ilu is not None:
            return self.ilu.build_multi_solver()
        apply = self._apply

        def apply_multi(B):
            B = np.asarray(B, dtype=np.float64)
            cols = [apply(B[:, j]) for j in range(B.shape[1])]
            return (
                np.stack(cols, axis=1) if cols else np.empty((B.shape[0], 0))
            )

        return apply_multi

    def resetup(self):
        """Advance the chain mid-solve (the guarded-apply protocol).

        Called by :func:`repro.solvers.as_preconditioner`'s guard when
        an apply returns non-finite values at solve time — the variant
        that validated at setup has gone bad on real data.  Marks the
        current variant failed, moves to the next chain stage, and
        returns the replacement apply.
        """
        if not self._ready:
            raise RuntimeError("call setup(A) first")
        self._record_failure(
            self.report.final_variant or "?",
            self.report.final_shift,
            detail="demoted: non-finite apply observed during solve",
        )
        self.report.resetups += 1
        self._advance()
        return self._apply
