"""Resilience layer: breakdown-safe factorization and fault injection.

Two halves, one contract (``docs/resilience.md``):

* **Numerical resilience** — :class:`ResilientFactor` wraps the
  factorization in a shift/fallback retry chain so that *setup always
  yields a usable preconditioner*, and the solvers' guarded applies can
  demote it further mid-solve via ``resetup()``.  The failure taxonomy
  itself (:class:`FactorizationBreakdown`) lives in ``repro.core`` —
  the factorization kernels raise it — and is re-exported here.
* **Machine resilience** — :class:`FaultPlan` injects seeded stragglers,
  spin-lock timeouts and dropped notifications into both the simulated
  machine and the real threaded runtime; the p2p runtime's watchdog
  detects stalled dependency waits and falls back to the barrier
  schedule.  Faults change *time*, never *results*.
"""

from ..core.breakdown import FactorizationBreakdown, classify_pivot
from .faults import FaultPlan, FaultRunReport, drop_last_publish
from .retry import (
    AttemptRecord,
    ExponentialBackoff,
    ResilienceReport,
    ResilientFactor,
    RetryPolicy,
)

__all__ = [
    "FactorizationBreakdown",
    "classify_pivot",
    "FaultPlan",
    "FaultRunReport",
    "drop_last_publish",
    "ExponentialBackoff",
    "RetryPolicy",
    "AttemptRecord",
    "ResilienceReport",
    "ResilientFactor",
]
