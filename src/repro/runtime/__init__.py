"""Real-thread execution of the p2p-scheduled algorithms.

Python's GIL means these executors cannot show wall-clock speedup (the
repro limitation the machine simulator exists to work around), but they
*do* run the actual concurrent algorithm: multiple OS threads, each
owning a slice of rows, synchronizing through the same per-thread
progress counters the paper's spin-lock scheme uses.  Tests use them to
verify the claims the simulator takes for granted:

* the pruned (per-producer-thread, latest-row) wait rule is sufficient —
  no data race ever produces a wrong value;
* the factorization is deterministic: any thread count and any
  interleaving yields the bit-identical factor the sequential reference
  produces (the robustness property §II contrasts with fine-grained
  asynchronous ILU);
* fault tolerance: under an injected :class:`repro.resilience.FaultPlan`
  (stragglers, lost notifications) the watchdog falls back to the
  barrier schedule and the result is *still* bit-identical — faults
  cost time, never correctness.
"""

from .pointtopoint import ProgressBoard, FaultInjectedBoard
from .threadpool import threaded_factor, threaded_trisolve_lower
from .threaded_lower import threaded_factor_two_stage

# the superstep executor lives in repro.sched (its plans do too) but is
# re-exported here beside the other real-thread entry points
from ..sched.threaded import threaded_trisolve_superstep

__all__ = [
    "ProgressBoard",
    "FaultInjectedBoard",
    "threaded_factor",
    "threaded_trisolve_lower",
    "threaded_factor_two_stage",
    "threaded_trisolve_superstep",
]
