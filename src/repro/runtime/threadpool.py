"""Threaded executors for the p2p-scheduled kernels.

``threaded_factor`` runs the upper-stage algorithm with real
``threading.Thread`` workers: rows dealt round-robin in level order,
each worker factoring its rows in sequence and spin-waiting on the
:class:`~repro.runtime.pointtopoint.ProgressBoard` for cross-thread
dependencies.  ``threaded_trisolve_lower`` does the same for the
forward solve.  Both must produce results bit-identical to their
sequential counterparts — that determinism is the point.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.iluk import factor_row, _diag_positions, _scatter_values
from ..core.upper import assign_round_robin
from ..sparse.csr import CSRMatrix
from .pointtopoint import ProgressBoard

__all__ = ["threaded_factor", "threaded_trisolve_lower"]


def _deps_by_producer(S, r, thread_of, own_thread):
    """Latest dependency row per distinct producer thread (pruned waits)."""
    cols = S.indices[S.indptr[r] : S.indptr[r + 1]]
    deps = cols[cols < r]
    out = {}
    for d in deps:
        u = int(thread_of[d])
        if u == own_thread:
            continue
        if d > out.get(u, -1):
            out[u] = int(d)
    return out


def threaded_factor(A: CSRMatrix, S: CSRMatrix, level_ptr, n_threads, *, pivot_tol=0.0):
    """Factor A on pattern S with real threads + p2p synchronization.

    ``A`` and ``S`` must already be in level order and ``level_ptr``
    must cover all rows (the LS-only configuration).  Returns the
    combined L\\U factor.
    """
    F = _scatter_values(S, A)
    diag_pos = _diag_positions(F)
    n = F.n_rows
    if int(level_ptr[-1]) != n:
        raise ValueError("level_ptr must cover every row")
    thread_of = assign_round_robin(level_ptr, n_threads)
    board = ProgressBoard(n_threads)
    errors = []

    def worker(t):
        try:
            my_rows = np.nonzero(thread_of == t)[0]
            for r in my_rows:
                r = int(r)
                for u, need in _deps_by_producer(S, r, thread_of, t).items():
                    board.wait_for(u, need)
                factor_row(F, r, diag_pos, pivot_tol=pivot_tol)
                board.publish(t, r)
        except BaseException as e:  # surface worker failures to the caller
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    return F


def threaded_trisolve_lower(F: CSRMatrix, b, level_ptr, n_threads):
    """Forward solve ``L y = b`` with real threads + p2p sync."""
    n = F.n_rows
    if int(level_ptr[-1]) != n:
        raise ValueError("level_ptr must cover every row")
    b = np.asarray(b, dtype=np.float64)
    y = np.zeros(n)
    thread_of = assign_round_robin(level_ptr, n_threads)
    board = ProgressBoard(n_threads)
    indptr, indices, data = F.indptr, F.indices, F.data
    errors = []

    def worker(t):
        try:
            my_rows = np.nonzero(thread_of == t)[0]
            for r in my_rows:
                r = int(r)
                for u, need in _deps_by_producer(F, r, thread_of, t).items():
                    board.wait_for(u, need)
                lo, hi = int(indptr[r]), int(indptr[r + 1])
                cols = indices[lo:hi]
                cut = int(np.searchsorted(cols, r))
                # sequential entry-order accumulation: the kernel layer's
                # bit-identical contract (np.dot may pair products)
                s = 0.0
                for kk in range(lo, lo + cut):
                    s += data[kk] * y[indices[kk]]
                y[r] = b[r] - s
                board.publish(t, r)
        except BaseException as e:
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    return y
