"""Threaded executors for the p2p-scheduled kernels.

``threaded_factor`` runs the upper-stage algorithm with real
``threading.Thread`` workers: rows dealt round-robin in level order,
each worker factoring its rows in sequence and spin-waiting on the
:class:`~repro.runtime.pointtopoint.ProgressBoard` for cross-thread
dependencies.  ``threaded_trisolve_lower`` does the same for the
forward solve.  Both must produce results bit-identical to their
sequential counterparts — that determinism is the point.

Resilience (``docs/resilience.md``): both executors accept a
:class:`repro.resilience.FaultPlan` (straggler sleeps, dropped publish
notifications) and run a *watchdog* around every dependency wait.  A
wait that exceeds ``watchdog_timeout`` wall-clock seconds — a lost
notification, a dead producer — sets a shared stop event; every worker
drains out, and the rows left incomplete are finished sequentially in
ascending order, which is exactly the barrier (CSR-LS) schedule.  The
fallback is numerically safe because every dependency of row ``r`` is a
row ``< r``, and a ``done[]`` flag array (written by workers *before*
publishing) guarantees no completed row is ever re-factored —
``factor_row`` divides in place and is not idempotent.  Faults
therefore cost time, never correctness: results under any plan are
bit-identical to the fault-free run.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..core.iluk import factor_row, _diag_positions, _scatter_values
from ..core.upper import assign_round_robin
from ..obs import spans as _spans
from ..sparse.csr import CSRMatrix
from .pointtopoint import FaultInjectedBoard, ProgressBoard

__all__ = ["deps_by_producer", "threaded_factor", "threaded_trisolve_lower"]


def _traced_wait(board, u, need, *, timeout, stop, rec, row):
    """One dependency wait, wrapped in a ``wait`` span when tracing.

    The span brackets the spin only — it reads the clock and appends an
    event, so the wait's outcome (and therefore the factor bits) is
    identical with tracing on or off.
    """
    if rec is None:
        return board.try_wait(u, need, timeout=timeout, stop=stop)
    with rec.span("wait", cat="runtime", producer=int(u), need=int(need), row=int(row)):
        return board.try_wait(u, need, timeout=timeout, stop=stop)


def deps_by_producer(S, r, thread_of, own_thread):
    """Latest dependency row per distinct producer thread (pruned waits)."""
    cols = S.indices[S.indptr[r] : S.indptr[r + 1]]
    deps = cols[cols < r]
    out = {}
    for d in deps:
        u = int(thread_of[d])
        if u == own_thread:
            continue
        if d > out.get(u, -1):
            out[u] = int(d)
    return out


def _make_board(n_threads, fault_plan, fault_report):
    if fault_plan is not None and fault_plan.dropped:
        return FaultInjectedBoard(n_threads, fault_plan, report=fault_report)
    return ProgressBoard(n_threads)


def _straggler_sleep(fault_plan, t):
    """Per-row wall-clock delay of a straggler thread (0 when healthy)."""
    if fault_plan is None or fault_plan.real_sleep_per_row <= 0.0:
        return 0.0
    return fault_plan.real_sleep_per_row * (fault_plan.rate(t) - 1.0)


def threaded_factor(
    A: CSRMatrix,
    S: CSRMatrix,
    level_ptr,
    n_threads,
    *,
    pivot_tol=0.0,
    fault_plan=None,
    fault_report=None,
    watchdog_timeout=5.0,
):
    """Factor A on pattern S with real threads + p2p synchronization.

    ``A`` and ``S`` must already be in level order and ``level_ptr``
    must cover all rows (the LS-only configuration).  Returns the
    combined L\\U factor.

    ``fault_plan`` injects faults (see :mod:`repro.resilience.faults`);
    ``watchdog_timeout`` bounds every dependency wait in wall-clock
    seconds — on expiry the run falls back to the sequential barrier
    schedule for the remaining rows (recorded in ``fault_report``).
    The returned factor is bit-identical either way.
    """
    F = _scatter_values(S, A)
    diag_pos = _diag_positions(F)
    n = F.n_rows
    if int(level_ptr[-1]) != n:
        raise ValueError("level_ptr must cover every row")
    thread_of = assign_round_robin(level_ptr, n_threads)
    board = _make_board(n_threads, fault_plan, fault_report)
    done = np.zeros(n, dtype=bool)
    stop = threading.Event()
    stalled = []
    errors = []

    def worker(t):
        try:
            rec = _spans.active()
            sleep_per_row = _straggler_sleep(fault_plan, t)
            my_rows = np.nonzero(thread_of == t)[0]
            for r in my_rows:
                r = int(r)
                if stop.is_set():
                    return
                for u, need in deps_by_producer(S, r, thread_of, t).items():
                    if not _traced_wait(
                        board, u, need, timeout=watchdog_timeout, stop=stop, rec=rec, row=r
                    ):
                        if not stop.is_set():
                            stalled.append((t, u, need))
                            stop.set()
                            if rec is not None:
                                rec.instant(
                                    "watchdog", cat="runtime",
                                    row=r, producer=int(u), need=int(need),
                                )
                        return
                if sleep_per_row:
                    time.sleep(sleep_per_row)
                with _spans.span("factor_row", cat="runtime", row=r):
                    factor_row(F, r, diag_pos, pivot_tol=pivot_tol)
                done[r] = True  # before publish: truth even if the publish drops
                board.publish(t, r)
        except BaseException as e:  # surface worker failures to the caller
            errors.append(e)
            stop.set()  # don't leave the other workers spinning forever

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    if stop.is_set():
        # watchdog fallback: barrier-schedule the remaining rows.  All
        # workers have joined, deps of row r are rows < r, and done[]
        # keeps non-idempotent factor_row off completed rows.
        n_fallback = 0
        with _spans.span("watchdog_fallback", cat="runtime"):
            for r in range(n):
                if not done[r]:
                    factor_row(F, r, diag_pos, pivot_tol=pivot_tol)
                    n_fallback += 1
        if fault_report is not None:
            fault_report.watchdog_engaged = True
            fault_report.n_fallback_rows = n_fallback
            fault_report.stalls.extend(stalled)
    return F


def threaded_trisolve_lower(
    F: CSRMatrix,
    b,
    level_ptr,
    n_threads,
    *,
    fault_plan=None,
    fault_report=None,
    watchdog_timeout=5.0,
):
    """Forward solve ``L y = b`` with real threads + p2p sync.

    Same watchdog/fallback contract as :func:`threaded_factor`.
    """
    n = F.n_rows
    if int(level_ptr[-1]) != n:
        raise ValueError("level_ptr must cover every row")
    b = np.asarray(b, dtype=np.float64)
    y = np.zeros(n)
    thread_of = assign_round_robin(level_ptr, n_threads)
    board = _make_board(n_threads, fault_plan, fault_report)
    indptr, indices, data = F.indptr, F.indices, F.data
    done = np.zeros(n, dtype=bool)
    stop = threading.Event()
    stalled = []
    errors = []

    def solve_row(r):
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        cols = indices[lo:hi]
        cut = int(np.searchsorted(cols, r))
        # sequential entry-order accumulation: the kernel layer's
        # bit-identical contract (np.dot may pair products)
        s = 0.0
        for kk in range(lo, lo + cut):
            s += data[kk] * y[indices[kk]]
        y[r] = b[r] - s

    def worker(t):
        try:
            rec = _spans.active()
            sleep_per_row = _straggler_sleep(fault_plan, t)
            my_rows = np.nonzero(thread_of == t)[0]
            for r in my_rows:
                r = int(r)
                if stop.is_set():
                    return
                for u, need in deps_by_producer(F, r, thread_of, t).items():
                    if not _traced_wait(
                        board, u, need, timeout=watchdog_timeout, stop=stop, rec=rec, row=r
                    ):
                        if not stop.is_set():
                            stalled.append((t, u, need))
                            stop.set()
                            if rec is not None:
                                rec.instant(
                                    "watchdog", cat="runtime",
                                    row=r, producer=int(u), need=int(need),
                                )
                        return
                if sleep_per_row:
                    time.sleep(sleep_per_row)
                with _spans.span("solve_row", cat="runtime", row=r):
                    solve_row(r)
                done[r] = True
                board.publish(t, r)
        except BaseException as e:
            errors.append(e)
            stop.set()

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    if stop.is_set():
        n_fallback = 0
        with _spans.span("watchdog_fallback", cat="runtime"):
            for r in range(n):
                if not done[r]:
                    solve_row(r)
                    n_fallback += 1
        if fault_report is not None:
            fault_report.watchdog_engaged = True
            fault_report.n_fallback_rows = n_fallback
            fault_report.stalls.extend(stalled)
    return y
