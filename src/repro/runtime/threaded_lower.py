"""Threaded Even-Rows lower stage with real OS threads.

Completes the real-thread story: :mod:`threadpool` runs the upper stage
with p2p progress counters; this module runs the ER lower stage the way
Fig. 8 describes — each thread independently eliminates its block's
upper-stage columns (FACTOR_L), a barrier, then the corner factorization
(serial, "good enough for most matrices").  Together they execute the
full two-stage algorithm concurrently and must reproduce the sequential
factor bit-for-bit.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.iluk import _diag_positions, _scatter_values, factor_row
from ..core.lower_er import EvenRows, _factor_row_range
from ..core.upper import assign_round_robin
from ..obs import spans as _spans
from ..sparse.csr import CSRMatrix
from .pointtopoint import ProgressBoard
from .threadpool import deps_by_producer

__all__ = ["threaded_factor_two_stage"]


def threaded_factor_two_stage(
    A: CSRMatrix,
    S: CSRMatrix,
    level_ptr,
    m,
    n_threads,
    *,
    pivot_tol=0.0,
):
    """Full two-stage factorization with real threads.

    ``level_ptr`` covers the upper rows ``0..m-1``; rows ``m..n-1`` are
    the lower stage, factored with Even-Rows.  Upper stage: p2p spin
    synchronization.  Lower stage: per-thread blocks + barrier + serial
    corner.  Returns the combined factor, bit-identical to the
    sequential reference.
    """
    if int(level_ptr[-1]) != m:
        raise ValueError("level_ptr must cover exactly the upper rows")
    F = _scatter_values(S, A)
    diag_pos = _diag_positions(F)
    n = F.n_rows
    thread_of = assign_round_robin(level_ptr, n_threads)
    board = ProgressBoard(n_threads)
    er = EvenRows(m=m, n=n, n_threads=n_threads)
    blocks = {t: (lo, hi) for t, lo, hi in er.blocks()}
    barrier = threading.Barrier(n_threads)
    errors = []

    def worker(t):
        try:
            rec = _spans.active()
            # ---- upper stage: p2p level-scheduled rows
            my_rows = np.nonzero(thread_of == t)[0]
            with _spans.span("upper_stage", cat="runtime", thread=t):
                for r in my_rows:
                    r = int(r)
                    for u, need in deps_by_producer(S, r, thread_of, t).items():
                        if rec is None:
                            board.wait_for(u, need)
                        else:
                            with rec.span(
                                "wait", cat="runtime",
                                producer=int(u), need=int(need), row=r,
                            ):
                                board.wait_for(u, need)
                    with _spans.span("factor_row", cat="runtime", row=r):
                        factor_row(F, r, diag_pos, pivot_tol=pivot_tol)
                    board.publish(t, r)
                # ---- wait until every upper row is published
                for u in range(n_threads):
                    rows_u = np.nonzero(thread_of == u)[0]
                    if rows_u.size:
                        if rec is None:
                            board.wait_for(u, int(rows_u[-1]))
                        else:
                            with rec.span(
                                "wait.stage", cat="runtime",
                                producer=int(u), need=int(rows_u[-1]),
                            ):
                                board.wait_for(u, int(rows_u[-1]))
            # ---- lower stage phase 1: my block's FACTOR_L
            lo, hi = blocks[t]
            with _spans.span("lower_block", cat="runtime", lo=lo, hi=hi):
                for r in range(lo, hi):
                    _factor_row_range(F, r, diag_pos, 0, m, pivot_tol=pivot_tol)
            if rec is None:
                barrier.wait()
            else:
                with rec.span("wait.barrier", cat="runtime"):
                    barrier.wait()
            # ---- corner: serial on thread 0
            if t == 0:
                with _spans.span("corner", cat="runtime", m=m, n=n):
                    for r in range(m, n):
                        _factor_row_range(F, r, diag_pos, m, r, pivot_tol=pivot_tol)
        except BaseException as e:
            errors.append(e)
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    return F
