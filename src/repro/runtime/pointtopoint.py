"""Per-thread progress counters — the point-to-point sync primitive.

The paper's upper stage replaces barriers with "inexpensive spinlocks":
each thread publishes the highest (level-ordered) row it has completed;
a consumer spins until the producing thread's counter passes the row it
needs.  The implied ordering of rows within a thread makes one counter
per thread sufficient — the sparsified synchronization of Park et al.

CPython notes: plain list stores of Python ints are atomic under the
GIL, so the board needs no locks; ``time.sleep(0)`` in the spin loop
yields the GIL so producers can run.
"""

from __future__ import annotations

import time

__all__ = ["ProgressBoard"]


class ProgressBoard:
    """Monotonic per-thread progress counters with spin-waiting."""

    def __init__(self, n_threads):
        self.n_threads = int(n_threads)
        self._progress = [-1] * self.n_threads

    def publish(self, thread, row):
        """Thread ``thread`` announces it has completed ``row``.

        Rows must be published in increasing order per thread (the
        implied ordering) — enforced because consumers rely on it.
        """
        if row <= self._progress[thread]:
            raise ValueError(
                f"thread {thread} published row {row} after {self._progress[thread]}"
            )
        self._progress[thread] = row

    def load(self, thread):
        return self._progress[thread]

    def wait_for(self, producer_thread, row, *, timeout=30.0):
        """Spin until ``producer_thread`` has completed ``row``."""
        deadline = time.monotonic() + timeout
        while self._progress[producer_thread] < row:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"waited {timeout}s for thread {producer_thread} to reach "
                    f"row {row} (at {self._progress[producer_thread]})"
                )
            time.sleep(0)  # yield the GIL

    def snapshot(self):
        return list(self._progress)
