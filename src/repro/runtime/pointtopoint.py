"""Per-thread progress counters — the point-to-point sync primitive.

The paper's upper stage replaces barriers with "inexpensive spinlocks":
each thread publishes the highest (level-ordered) row it has completed;
a consumer spins until the producing thread's counter passes the row it
needs.  The implied ordering of rows within a thread makes one counter
per thread sufficient — the sparsified synchronization of Park et al.

CPython notes: plain list stores of Python ints are atomic under the
GIL, so the board needs no locks; ``time.sleep(0)`` in the spin loop
yields the GIL so producers can run.
"""

from __future__ import annotations

import time

__all__ = ["ProgressBoard", "FaultInjectedBoard"]


class ProgressBoard:
    """Monotonic per-thread progress counters with spin-waiting."""

    def __init__(self, n_threads):
        self.n_threads = int(n_threads)
        self._progress = [-1] * self.n_threads

    def publish(self, thread, row):
        """Thread ``thread`` announces it has completed ``row``.

        Rows must be published in increasing order per thread (the
        implied ordering) — enforced because consumers rely on it.
        """
        if row <= self._progress[thread]:
            raise ValueError(
                f"thread {thread} published row {row} after {self._progress[thread]}"
            )
        self._progress[thread] = row

    def load(self, thread):
        return self._progress[thread]

    def wait_for(self, producer_thread, row, *, timeout=30.0):
        """Spin until ``producer_thread`` has completed ``row``."""
        deadline = time.monotonic() + timeout
        while self._progress[producer_thread] < row:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"waited {timeout}s for thread {producer_thread} to reach "
                    f"row {row} (at {self._progress[producer_thread]})"
                )
            time.sleep(0)  # yield the GIL

    def try_wait(self, producer_thread, row, *, timeout=30.0, stop=None):
        """Bounded spin: True when satisfied, False on timeout or ``stop``.

        The watchdog variant of :meth:`wait_for` — a stalled dependency
        (lost notification, dead producer) returns False instead of
        raising, so the caller can trigger the barrier-schedule fallback
        (``repro.runtime.threadpool``).  ``stop`` is an optional
        ``threading.Event`` that aborts the spin early once some other
        worker has already given up.
        """
        deadline = time.monotonic() + timeout
        while self._progress[producer_thread] < row:
            if stop is not None and stop.is_set():
                return False
            if time.monotonic() > deadline:
                return False
            time.sleep(0)  # yield the GIL
        return True

    def snapshot(self):
        return list(self._progress)


class FaultInjectedBoard(ProgressBoard):
    """A ProgressBoard that loses publishes per a FaultPlan.

    A dropped publish models a lost notification: the producer's memory
    writes have happened (the factor row is computed) but its counter
    never advances past the dropped row.  Because counters are
    monotonic, the thread's *next* surviving publish covers the loss;
    dropping a thread's last publish stalls every waiter until the
    watchdog fires.
    """

    def __init__(self, n_threads, fault_plan, report=None):
        super().__init__(n_threads)
        self.fault_plan = fault_plan
        self.report = report

    def publish(self, thread, row):
        if self.fault_plan.is_dropped(thread, row):
            if self.report is not None:
                self.report.dropped_events += 1
            return
        super().publish(thread, row)
