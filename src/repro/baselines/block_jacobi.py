"""Block-Jacobi preconditioner — the embarrassingly parallel baseline.

Not in the paper's figures, but the natural lower bound everyone
compares ILU against: invert independent diagonal blocks, no coupling,
no synchronization at all.  It scales perfectly and preconditions
poorly — the opposite corner of the design space from Javelin, which
pays synchronization for coupling.  Useful in examples and as a
calibration anchor for the end-to-end model (a method with zero sync
cost shows what the machine model's pure-compute scaling looks like).
"""

from __future__ import annotations

import numpy as np

from ..machine.core import SimMachine
from ..sparse.csr import CSRMatrix

__all__ = ["BlockJacobi"]


class BlockJacobi:
    """Block-Jacobi preconditioner with contiguous equal blocks.

    Parameters
    ----------
    block_size:
        Rows per diagonal block (the last block may be short).
    """

    def __init__(self, block_size=32):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)
        self._ready = False

    def setup(self, A: CSRMatrix):
        """Extract and invert (factorize) the diagonal blocks."""
        if A.n_rows != A.n_cols:
            raise ValueError("block Jacobi requires a square matrix")
        n = A.n_rows
        self.n = n
        self.blocks = []
        for lo in range(0, n, self.block_size):
            hi = min(lo + self.block_size, n)
            B = np.zeros((hi - lo, hi - lo))
            for r in range(lo, hi):
                cols, vals = A.row(r)
                inside = (cols >= lo) & (cols < hi)
                B[r - lo, cols[inside] - lo] = vals[inside]
            # guard singular blocks with a tiny regularization
            try:
                lu = np.linalg.inv(B)
            except np.linalg.LinAlgError:
                lu = np.linalg.inv(B + 1e-10 * np.eye(hi - lo))
            self.blocks.append((lo, hi, lu))
        self._ready = True
        return self

    def solve(self, r):
        """Apply ``z = M⁻¹ r`` block by block."""
        if not self._ready:
            raise RuntimeError("call setup(A) first")
        r = np.asarray(r, dtype=np.float64)
        z = np.empty(self.n)
        for lo, hi, inv in self.blocks:
            z[lo:hi] = inv @ r[lo:hi]
        return z

    def simulate_apply(self, machine: SimMachine):
        """Modelled apply time: independent dense block solves, zero sync."""
        thread_time = np.zeros(machine.n_threads)
        for i, (lo, hi, _) in enumerate(self.blocks):
            b = hi - lo
            t = i % machine.n_threads
            thread_time[t] += machine.work_time(2.0 * b * b, b * b / 8.0, thread=t, vectorized=True)
        return float(thread_time.max())
