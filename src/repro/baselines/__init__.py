"""Comparison baselines.

* :mod:`wsmp_like` — a stand-in for the proprietary Watson Sparse
  Matrix Package used in Fig. 9: a supernodal-panel ILUT whose
  heavyweight data structures and limited parallel reductions reproduce
  the *mechanism* the paper blames for WSMP's slowness on sparse ILU
  ("too many data movement operations per float-point operation", no
  scaling past 8 cores, failures on reordering-sensitive matrices).
* :mod:`csrls` — the traditional barrier-synchronized level-set
  triangular solve (the CSR-LS bars of Fig. 12).
* :mod:`chow_patel` — the fine-grained asynchronous ILU of Chow &
  Patel, which §II credits with "very good performance on many-core and
  GPU systems" while noting its nondeterminism; implemented for the
  determinism-vs-scalability comparison Javelin's design argues about.
"""

from .wsmp_like import WSMPLikeILU, WSMPFailure
from .csrls import CSRLevelSetSolver
from .chow_patel import chow_patel_ilu, fixed_point_residual, simulate_sweep
from .block_jacobi import BlockJacobi

__all__ = [
    "WSMPLikeILU",
    "WSMPFailure",
    "CSRLevelSetSolver",
    "chow_patel_ilu",
    "fixed_point_residual",
    "simulate_sweep",
    "BlockJacobi",
]
