"""Fine-grained asynchronous ILU (Chow & Patel, SISC 2015).

The paper's §II singles this method out: it scales superbly on
many-core/GPU hardware but "may result in an incomplete factorization
that is nondeterministic and that challenges traditional dropping or
modified incomplete factorization due to race conditions".  Javelin's
pitch is keeping traditional, deterministic ILU competitive — so the
comparison baseline belongs in the reproduction.

Formulation: the ILU equations on the pattern S are a fixed point of

    l_ij = (a_ij − Σ_{k<j} l_ik u_kj) / u_jj      (i > j)
    u_ij =  a_ij − Σ_{k<i} l_ik u_kj              (i ≤ j)

Chow–Patel sweeps these updates over all nonzeros in parallel with no
ordering constraints; each sweep uses whatever neighbour values happen
to be current.  We provide:

* :func:`chow_patel_ilu` — synchronous (Jacobi-style) sweeps, fully
  deterministic, for convergence studies;
* ``asynchronous=True`` — in-place (Gauss–Seidel-style) sweeps over a
  randomly shuffled nonzero order, modelling the hardware's racy
  update interleavings: different seeds give *different* factors, the
  nondeterminism the paper contrasts with Javelin;
* :func:`simulate_sweep` — the machine-model cost of one sweep (it is
  embarrassingly parallel: nnz-proportional work, no sync).
"""

from __future__ import annotations

import numpy as np

from ..core.symbolic import ilu0_pattern
from ..machine.core import SimMachine
from ..sparse.csr import CSRMatrix

__all__ = ["chow_patel_ilu", "simulate_sweep", "fixed_point_residual"]


def _entry_lists(S: CSRMatrix):
    """Flatten the pattern into (i, j, storage_idx) triples."""
    rows = np.repeat(np.arange(S.n_rows, dtype=np.int64), np.diff(S.indptr))
    return rows, S.indices.copy(), np.arange(S.nnz, dtype=np.int64)


def _row_map(S: CSRMatrix):
    """Per-row dict col -> storage idx for O(1) lookups in the sweeps."""
    maps = []
    for r in range(S.n_rows):
        lo, hi = int(S.indptr[r]), int(S.indptr[r + 1])
        maps.append({int(c): k for c, k in zip(S.indices[lo:hi], range(lo, hi))})
    return maps


def _update_entry(i, j, kk, A_val, data, maps, diag_idx):
    """One fixed-point update of entry (i, j) stored at ``kk``."""
    # s = sum over k < min(i, j) of l_ik * u_kj
    s = 0.0
    row_i = maps[i]
    lim = min(i, j)
    for k, ki in row_i.items():
        if k >= lim:
            continue
        kj = maps[k].get(j)
        if kj is not None:
            s += data[ki] * data[kj]
    if i > j:  # L entry
        djj = data[diag_idx[j]]
        if djj == 0.0:
            return data[kk]  # skip until the diagonal stabilizes
        return (A_val - s) / djj
    return A_val - s  # U entry (including diagonal)


def chow_patel_ilu(
    A: CSRMatrix,
    S: CSRMatrix | None = None,
    *,
    sweeps=5,
    asynchronous=False,
    seed=0,
):
    """Iterative fine-grained ILU on pattern S (default ILU(0)).

    Returns the combined L\\U factor after ``sweeps`` fixed-point
    sweeps, initialized from A (the standard warm start).  Synchronous
    mode updates all entries from the previous sweep's values
    (deterministic); asynchronous mode updates in place in a shuffled
    order (run-to-run nondeterministic across seeds).
    """
    if S is None:
        S = ilu0_pattern(A)
    from ..core.iluk import _scatter_values, _diag_positions

    F = _scatter_values(S, A)
    A_on_S = F.data.copy()  # A's values aligned with S's storage
    diag_idx = _diag_positions(F)
    maps = _row_map(S)
    rows, cols, idxs = _entry_lists(S)
    rng = np.random.default_rng(seed)

    for _ in range(sweeps):
        if asynchronous:
            # in-place updates in a shuffled order: each entry reads
            # whatever mix of old/new neighbour values the order implies,
            # modelling the hardware's racy interleavings
            order = rng.permutation(S.nnz)
            for kk in order:
                kk = int(kk)
                F.data[kk] = _update_entry(
                    int(rows[kk]), int(cols[kk]), kk, A_on_S[kk], F.data, maps, diag_idx
                )
        else:
            # Jacobi-style: every entry reads the previous sweep's values
            snapshot = F.data.copy()
            new = np.empty_like(F.data)
            for kk in range(S.nnz):
                new[kk] = _update_entry(
                    int(rows[kk]), int(cols[kk]), kk, A_on_S[kk], snapshot, maps, diag_idx
                )
            F.data = new
    return F


def fixed_point_residual(A: CSRMatrix, F: CSRMatrix):
    """Max deviation of F from the ILU fixed point on its pattern.

    Zero exactly when F is the (unique, under nonzero pivots) ILU
    factor; Chow–Patel convergence is measured by this dropping.
    """
    from ..core.iluk import _diag_positions

    diag_idx = _diag_positions(F)
    maps = _row_map(F)
    from ..core.iluk import _scatter_values

    A_on_S = _scatter_values(F.pattern_copy(), A).data
    rows, cols, _ = _entry_lists(F)
    worst = 0.0
    for kk in range(F.nnz):
        i, j = int(rows[kk]), int(cols[kk])
        want = _update_entry(i, j, kk, A_on_S[kk], F.data, maps, diag_idx)
        worst = max(worst, abs(want - F.data[kk]))
    return worst


def simulate_sweep(S: CSRMatrix, machine: SimMachine, *, sweeps=1):
    """Machine-model time of Chow–Patel sweeps: flat nnz-parallel work.

    Each entry's update costs ~2·(row overlap) flops; there is no
    synchronization at all inside a sweep — the property that makes the
    method scale where level scheduling cannot, at the price of
    determinism and approximation.
    """
    # mean overlap work per entry ~ average row length
    avg_row = S.nnz / max(S.n_rows, 1)
    per_entry_flops = 2.0 * avg_row
    per_entry_touch = avg_row
    total = 0.0
    entries_per_thread = -(-S.nnz // machine.n_threads)
    for _ in range(sweeps):
        total += entries_per_thread * machine.work_time(
            per_entry_flops, per_entry_touch, thread=0
        )
        total += machine.barrier_cost()  # sweep boundary
    return total
