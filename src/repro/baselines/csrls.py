"""CSR-LS: barrier-synchronized level-set triangular solve.

The standard parallel stri "implemented with OpenMP and barriers
between levels in a level set ordering as done in previous works"
(§VI).  Fig. 12 uses its single-thread time as the speedup base and its
parallel times as the bar to beat.
"""

from __future__ import annotations


from ..machine.core import SimMachine
from ..ordering.levelsets import level_sets_lower
from ..sparse.csr import CSRMatrix
from ..sparse.pattern import lower_pattern, symmetrize_pattern
from ..core.trisolve import (
    trisolve_lower_serial,
    trisolve_upper_serial,
    simulate_trisolve_barrier,
)

__all__ = ["CSRLevelSetSolver"]


class CSRLevelSetSolver:
    """Baseline level-set triangular solver over a factored matrix.

    Numerically a plain forward/backward sweep; its simulated execution
    charges a full barrier between consecutive levels.
    """

    def __init__(self, F: CSRMatrix):
        self.F = F
        self.levels = level_sets_lower(lower_pattern(symmetrize_pattern(F)))

    def solve(self, b):
        """x = U⁻¹ L⁻¹ b (sequential numeric sweeps)."""
        return trisolve_upper_serial(self.F, trisolve_lower_serial(self.F, b))

    def simulate(self, machine: SimMachine, *, both=True):
        """Modelled solve time with barrier-per-level scheduling."""
        return simulate_trisolve_barrier(self.F, self.levels, machine, both=both)

    def n_levels(self):
        return self.levels.n_levels
