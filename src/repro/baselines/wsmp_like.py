"""WSMP-like baseline: supernodal-panel ILUT (Fig. 9's comparator).

WSMP itself is proprietary, so this module rebuilds the *mechanism* the
paper identifies when explaining Fig. 9 (§V):

* the factorization is organized around supernode-like panels — groups
  of consecutive rows with (nearly) matching sparsity patterns.  In a
  sparse incomplete factorization "there does not exist many
  similarities in nonzero structure", so the panels degenerate to a few
  rows each while still paying panel-sized data-structure costs;
* every panel pays fixed assembly/scatter overheads ("too many data
  movement operations per float-point operation");
* parallelism comes from panel-level reductions with barrier-style
  synchronization that stops scaling around 8 cores;
* the internal preordering imposes numerical constraints — pivots that
  pass in Javelin's lightweight path can fail here, which Fig. 9 marks
  with an 'x' (:class:`WSMPFailure`).

Numerically it runs the dual-threshold ILUT (τ set so that the kept
nonzeros match ILU(0)'s, the paper's protocol) and is a perfectly valid
preconditioner — just an expensive one to build.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ilut import ilut_factor
from ..core.iluk import PivotBreakdownError
from ..machine.core import SimMachine
from ..sparse.csr import CSRMatrix

__all__ = ["WSMPLikeILU", "WSMPFailure"]

# Panel cost constants: per-panel fixed overhead (index translation,
# workspace scatter/gather) and per-entry data-movement multiplier.
# These are the "heavyweight data structure" taxes Javelin avoids.
_PANEL_SETUP_FLOP_EQ = 4000.0  # flop-equivalents charged per panel
_DATA_MOVE_FACTOR = 6.0  # extra bytes moved per nonzero vs plain CSR
_MAX_SCALING_CORES = 8  # the paper: "WSMP does not scale past this point"


class WSMPFailure(RuntimeError):
    """The baseline failed on this matrix (the 'x' columns of Fig. 9)."""


@dataclass
class Supernode:
    start: int
    stop: int  # rows [start, stop)
    width: int  # union pattern width

    @property
    def n_rows(self):
        return self.stop - self.start


class WSMPLikeILU:
    """Supernodal-panel ILUT baseline.

    Parameters
    ----------
    tau:
        Drop tolerance; Fig. 9's protocol picks τ so kept fill matches
        ILU(0) (``tau_for_ilu0_nnz`` does this automatically when
        ``tau=None``).
    similarity:
        Fraction of pattern overlap required to merge a row into the
        current supernode (0.9 ≈ classical supernode detection).
    pivot_tol:
        Relative pivot threshold below which the baseline *fails* —
        deliberately stricter than Javelin's, reproducing the paper's
        observation that WSMP's internal structure/reordering makes it
        fail "due to numerical constraints" where Javelin succeeds.
    """

    def __init__(self, tau=None, similarity=0.9, pivot_tol=1e-8):
        self.tau = tau
        self.similarity = similarity
        self.pivot_tol = pivot_tol
        self._factored = False

    # ------------------------------------------------------------------
    def detect_supernodes(self, A: CSRMatrix):
        """Greedy supernode detection on consecutive rows."""
        n = A.n_rows
        nodes = []
        r = 0
        while r < n:
            base_cols = set(int(c) for c in A.indices[A.indptr[r] : A.indptr[r + 1]])
            stop = r + 1
            union = set(base_cols)
            while stop < n:
                cols = set(int(c) for c in A.indices[A.indptr[stop] : A.indptr[stop + 1]])
                inter = len(cols & base_cols)
                denom = max(len(cols | base_cols), 1)
                if inter / denom < self.similarity:
                    break
                union |= cols
                stop += 1
            nodes.append(Supernode(start=r, stop=stop, width=len(union)))
            r = stop
        return nodes

    # ------------------------------------------------------------------
    def tau_for_ilu0_nnz(self, A: CSRMatrix, *, tol=0.15, max_rounds=12):
        """Bisection for a τ whose kept nonzeros ≈ nnz(ILU(0)) = nnz(A)."""
        target = A.nnz
        lo, hi = 1e-8, 0.5
        best = 1e-3
        for _ in range(max_rounds):
            mid = float(np.sqrt(lo * hi))
            try:
                F = ilut_factor(A, tau=mid, pivot_tol=0.0)
            except PivotBreakdownError as e:
                raise WSMPFailure(f"ILUT breakdown while matching nnz: {e}") from e
            if abs(F.nnz - target) / target <= tol:
                return mid
            if F.nnz > target:
                lo = mid  # too much fill kept -> raise tau
            else:
                hi = mid
            best = mid
        return best

    # ------------------------------------------------------------------
    def factor(self, A: CSRMatrix):
        """Numeric factorization (dual-threshold ILUT, no pivoting)."""
        tau = self.tau if self.tau is not None else self.tau_for_ilu0_nnz(A)
        # WSMP's internal ordering constraints: simulate its stricter
        # numerical environment by requiring relatively large pivots.
        try:
            F = ilut_factor(A, tau=tau, pivot_tol=0.0)
        except PivotBreakdownError as e:
            raise WSMPFailure(str(e)) from e
        d = np.abs(F.diagonal())
        scale = np.abs(F.data).max() if F.nnz else 1.0
        if d.size and d.min() < self.pivot_tol * scale:
            raise WSMPFailure(
                f"pivot {d.min():.3e} below the package's stability threshold"
            )
        self.F = F
        self.supernodes = self.detect_supernodes(A)
        self._factored = True
        return F

    # ------------------------------------------------------------------
    def simulate_factor(self, A: CSRMatrix, machine: SimMachine):
        """Modelled factorization time of the panel-based code.

        Each supernode charges: a fixed panel setup (flop-equivalents),
        panel work with the data-movement multiplier on its bytes, and a
        reduction barrier.  Panels are distributed over
        ``min(p, 8)`` effectively usable cores.
        """
        nodes = self.supernodes if self._factored else self.detect_supernodes(A)
        p_eff = min(machine.n_threads, _MAX_SCALING_CORES)
        # charge per panel, round-robin over effective cores
        core_time = np.zeros(p_eff)
        for i, sn in enumerate(nodes):
            nnz_panel = 0
            flops_panel = _PANEL_SETUP_FLOP_EQ
            for r in range(sn.start, sn.stop):
                row_nnz = int(A.indptr[r + 1] - A.indptr[r])
                nnz_panel += row_nnz
                # dense-panel arithmetic: the panel updates touch the full
                # union width per row, the classic supernodal cost shape
                flops_panel += 2.0 * row_nnz * max(sn.width, 1)
            t = machine.work_time(
                flops_panel, nnz_panel * _DATA_MOVE_FACTOR, thread=i % p_eff
            )
            core_time[i % p_eff] += t
        makespan = float(core_time.max())
        # reduction barriers between panel waves
        waves = -(-len(nodes) // max(p_eff, 1))
        makespan += waves * machine.barrier_cost()
        return makespan

    def simulate_setup(self, A: CSRMatrix, machine: SimMachine):
        """Modelled preprocessing (ordering + symbolic + structure copy).

        The paper: "Javelin is ∼10× faster than WSMP in this stage" —
        the panel detection, index translation and workspace allocation
        all stream the matrix several times.
        """
        passes = 8.0  # structure scans during panel setup
        return machine.work_time(A.nnz * 2.0, A.nnz * passes, thread=0)
