"""Chrome trace-event export: real spans and simulated timelines.

Both kinds of timeline the framework produces become one JSON format,
loadable in ``chrome://tracing`` or https://ui.perfetto.dev:

* :func:`recorder_events` — the wall-clock spans/instants/counters of a
  :class:`~repro.obs.spans.SpanRecorder` (the real threaded runtime);
* :func:`execution_trace_events` — a simulated
  :class:`~repro.machine.trace.ExecutionTrace` (the DES timelines),
  with per-thread *sync-wait* gaps emitted as their own spans, level
  boundaries as global instant events, and fault-injection events
  (dropped publishes, spin faults) as thread-local instants.

The event dialect is the documented trace-event format: ``"X"``
complete events (``ts`` + ``dur``), ``"i"`` instants, ``"C"`` counters
and ``"M"`` metadata, all with microsecond timestamps.
:func:`validate_events` checks exactly the subset this module emits —
the schema the round-trip tests and ``bench_obs`` gate on.
"""

from __future__ import annotations

import json

__all__ = [
    "recorder_events",
    "execution_trace_events",
    "transition_lane_events",
    "chrome_trace",
    "write_chrome_trace",
    "validate_events",
]

_US = 1e6  # seconds -> trace-event microseconds

_PHASES = {"X", "i", "C", "M"}
_INSTANT_SCOPES = {"t", "p", "g"}


def _label_name(label):
    """Human-readable event name for an ExecutionTrace interval label."""
    if isinstance(label, tuple) and len(label) == 2:
        return f"{label[0]} {label[1]}"
    return "task" if label is None else str(label)


def _thread_metadata(tids, pid, prefix="thread"):
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": int(t),
            "args": {"name": f"{prefix} {t}"},
        }
        for t in tids
    ]


def recorder_events(recorder, *, pid=1):
    """Trace events for a :class:`SpanRecorder`'s recorded output."""
    out = _thread_metadata(range(recorder.n_threads()), pid)
    for e in recorder.events():
        base = {
            "name": e.name,
            "cat": e.cat or "obs",
            "pid": pid,
            "tid": int(e.thread),
            "ts": e.start * _US,
        }
        if e.kind == "span":
            base["ph"] = "X"
            base["dur"] = e.duration * _US
            base["args"] = dict(e.args)
        elif e.kind == "instant":
            base["ph"] = "i"
            base["s"] = "t"
            base["args"] = dict(e.args)
        else:  # counter
            base["ph"] = "C"
            base["args"] = dict(e.args)
        out.append(base)
    return out


def execution_trace_events(
    trace,
    *,
    pid=0,
    cat="sim",
    wait_spans=True,
    level_ptr=None,
    step_groups=None,
    step_name="superstep",
    fault_plan=None,
    thread_prefix="sim thread",
):
    """Trace events for a simulated :class:`ExecutionTrace`.

    ``wait_spans`` emits each thread's idle gaps (time spent spinning
    on a dependency or out of work) as ``"wait"`` spans in their own
    category, so Perfetto shows busy vs. wait per thread directly.
    ``level_ptr`` adds a global instant at each level's completion time
    (the boundary a barrier schedule would synchronize on).
    ``step_groups`` does the same for superstep schedules
    (:mod:`repro.sched`), whose groups are *not* contiguous row-id
    ranges: each element is the explicit array of row ids of one
    superstep, and a global ``"{step_name} N done"`` instant lands at
    the group's latest row completion — the barrier the schedule
    actually pays.  ``fault_plan`` marks dropped publishes and spin
    faults on the rows they hit.
    """
    out = _thread_metadata(range(trace.n_threads), pid, prefix=thread_prefix)
    stop_of_row = {}
    for iv in trace.intervals:
        out.append(
            {
                "name": _label_name(iv.label),
                "cat": cat,
                "ph": "X",
                "pid": pid,
                "tid": int(iv.thread),
                "ts": iv.start * _US,
                "dur": iv.duration * _US,
                "args": {},
            }
        )
        if isinstance(iv.label, tuple) and len(iv.label) == 2 and iv.label[0] == "row":
            stop_of_row[int(iv.label[1])] = iv
    if wait_spans:
        for t in range(trace.n_threads):
            ivs = trace.thread_intervals(t)
            cursor = 0.0
            for iv in ivs:
                if iv.start > cursor:
                    out.append(
                        {
                            "name": "wait",
                            "cat": f"{cat}.wait",
                            "ph": "X",
                            "pid": pid,
                            "tid": int(t),
                            "ts": cursor * _US,
                            "dur": (iv.start - cursor) * _US,
                            "args": {},
                        }
                    )
                cursor = max(cursor, iv.stop)
    if level_ptr is not None:
        level_ptr = list(int(x) for x in level_ptr)
        for lev in range(len(level_ptr) - 1):
            rows = range(level_ptr[lev], level_ptr[lev + 1])
            stops = [stop_of_row[r].stop for r in rows if r in stop_of_row]
            if not stops:
                continue
            out.append(
                {
                    "name": f"level {lev} done",
                    "cat": f"{cat}.level",
                    "ph": "i",
                    "s": "g",
                    "pid": pid,
                    "tid": 0,
                    "ts": max(stops) * _US,
                    "args": {"rows": len(stops)},
                }
            )
    if step_groups is not None:
        for s, rows in enumerate(step_groups):
            stops = [stop_of_row[int(r)].stop for r in rows if int(r) in stop_of_row]
            if not stops:
                continue
            out.append(
                {
                    "name": f"{step_name} {s} done",
                    "cat": f"{cat}.{step_name}",
                    "ph": "i",
                    "s": "g",
                    "pid": pid,
                    "tid": 0,
                    "ts": max(stops) * _US,
                    "args": {"rows": len(stops)},
                }
            )
    if fault_plan is not None:
        for (u, row) in sorted(fault_plan.dropped):
            iv = stop_of_row.get(int(row))
            if iv is None:
                continue
            out.append(
                {
                    "name": f"dropped publish row {int(row)}",
                    "cat": f"{cat}.fault",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": int(u),
                    "ts": iv.stop * _US,
                    "args": {"row": int(row)},
                }
            )
        for row in sorted(fault_plan.spin_faults):
            iv = stop_of_row.get(int(row))
            if iv is None:
                continue
            out.append(
                {
                    "name": f"spin fault row {int(row)}",
                    "cat": f"{cat}.fault",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": int(iv.thread),
                    "ts": iv.start * _US,
                    "args": {"row": int(row)},
                }
            )
    return out


def transition_lane_events(steps, *, pid=7, cat="verify", lane_names=None, title=None):
    """Render an abstract transition sequence as per-lane instant events.

    ``steps`` is an iterable of ``(index, lane, label)`` — e.g. a model
    checker's counterexample trace, one lane per cluster node — spaced
    1 us apart in sequence order so the interleaving reads left to
    right in the trace viewer.  ``lane_names`` maps lane id to a
    display name; ``title`` adds a global instant at t=0 naming the
    whole sequence.  Output passes :func:`validate_events`.
    """
    out = []
    lanes_seen = sorted({int(lane) for _, lane, _ in steps})
    names = dict(lane_names or {})
    for lane in lanes_seen:
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": str(names.get(lane, f"lane {lane}"))},
            }
        )
    if title:
        tid = lanes_seen[0] if lanes_seen else 0
        out.append(
            {
                "name": str(title),
                "cat": cat,
                "ph": "i",
                "s": "g",
                "pid": pid,
                "tid": tid,
                "ts": 0.0,
                "args": {},
            }
        )
    for index, lane, label in steps:
        out.append(
            {
                "name": str(label),
                "cat": cat,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": int(lane),
                "ts": float(index + 1),
                "args": {"step": int(index) + 1},
            }
        )
    return out


def chrome_trace(events, *, metadata=None):
    """Wrap a flat event list in the trace-file envelope."""
    return {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(path, events, *, metadata=None):
    """Serialize ``events`` to ``path`` as a Chrome trace JSON file."""
    doc = chrome_trace(events, metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return path


def validate_events(events):
    """Schema-check a trace-event list; returns a list of error strings.

    Validates the subset this module emits: required keys, known
    phases, microsecond timestamps that are finite and non-negative,
    non-negative durations on complete events, and instant scopes.
    An empty return means the trace loads cleanly.
    """
    errors = []
    if not isinstance(events, list):
        return [f"traceEvents must be a list, got {type(events).__name__}"]
    for i, e in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(e, dict):
            errors.append(f"{where}: not an object")
            continue
        name = e.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
        ph = e.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where} ({name}): unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                errors.append(f"{where} ({name}): {key} must be an int")
        if ph == "M":
            continue  # metadata events carry no timestamp contract
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0.0:
            errors.append(f"{where} ({name}): bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0.0:
                errors.append(f"{where} ({name}): complete event needs dur >= 0")
        if ph == "i" and e.get("s") not in _INSTANT_SCOPES:
            errors.append(f"{where} ({name}): instant scope must be one of t/p/g")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                errors.append(f"{where} ({name}): counter needs numeric args")
    return errors
