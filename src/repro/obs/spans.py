"""Structured span/event tracing — the instrumentation substrate.

Every measurement in the framework flows through this module: nested
wall-clock spans (kernel dispatches, per-row wait vs. work in the
threaded runtime), instant events (cache hits, resilience attempt
transitions, watchdog firings), and counter samples (per-iteration
solver residuals).  The design constraint is the one the bit-identity
tests enforce: **tracing must never change results, and disabled
tracing must cost one global read per site**.

* Disabled (the default): :func:`span` returns a shared no-op context
  manager, :func:`instant` / :func:`counter` return immediately after a
  single ``None`` check.  No recorder, no locks, no clock reads.
* Enabled (:func:`enable` / the :func:`tracing` context manager): a
  :class:`SpanRecorder` timestamps events with ``time.perf_counter``
  relative to its own epoch, assigns dense thread ids in first-seen
  order, and tracks a per-thread span stack so nesting depth is
  recorded and well-formedness is checkable
  (:meth:`SpanRecorder.check_wellformed`).

Spans carry only *time* — they read the clock and append to a list —
so enabling them cannot perturb any numeric path.  Export to Chrome
trace-event JSON lives in :mod:`repro.obs.chrome_trace`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "SpanEvent",
    "SpanRecorder",
    "enable",
    "disable",
    "active",
    "enabled",
    "tracing",
    "span",
    "instant",
    "counter",
]

_RECORDER = None  # the process-wide recorder; None = tracing disabled


@dataclass(frozen=True)
class SpanEvent:
    """One recorded event.

    ``kind`` is ``"span"`` (closed interval), ``"instant"`` (point
    event) or ``"counter"`` (point sample with a ``value`` arg).
    ``thread`` is a dense id assigned in first-seen order, ``start`` /
    ``stop`` are seconds since the recorder's epoch (equal for point
    events), ``depth`` is the span-nesting depth at emission, and
    ``args`` is a tuple of ``(key, value)`` tag pairs.
    """

    kind: str
    name: str
    cat: str
    thread: int
    start: float
    stop: float
    depth: int
    args: tuple = ()

    @property
    def duration(self):
        return self.stop - self.start


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span: records on exit, maintains the thread-local stack."""

    __slots__ = ("_rec", "name", "cat", "args", "_start", "_depth")

    def __init__(self, rec, name, cat, args):
        self._rec = rec
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        rec = self._rec
        stack = rec._stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = rec._now()
        return self

    def __exit__(self, *exc):
        rec = self._rec
        stop = rec._now()
        stack = rec._stack()
        # exception-safe pop: anything pushed above us is abandoned
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        rec._append(
            SpanEvent(
                "span", self.name, self.cat, rec._tid(), self._start, stop,
                self._depth, self.args,
            )
        )
        return False


class SpanRecorder:
    """Collects :class:`SpanEvent` records, thread-safely.

    All clocks are relative to the recorder's construction time, so a
    fresh recorder's events start near 0 and export cleanly.  Events
    are appended under a lock; thread ids are dense (0, 1, ...) in
    first-seen order so exports map onto compact timeline rows.
    """

    def __init__(self):
        self._epoch = time.perf_counter()
        self._events = []
        self._lock = threading.Lock()  # verify: ok[JAV002] obs is the instrumentation layer
        self._tids = {}
        self._local = threading.local()

    # -- internals -----------------------------------------------------
    def _now(self):
        return time.perf_counter() - self._epoch

    def _tid(self):
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, ev):
        with self._lock:
            self._events.append(ev)

    @staticmethod
    def _args(kw):
        return tuple(sorted(kw.items()))

    # -- recording API -------------------------------------------------
    def span(self, name, cat="", **args):
        """A context manager recording ``name`` as a closed span."""
        return _Span(self, name, cat, self._args(args))

    def instant(self, name, cat="", **args):
        """Record a point event at the current time."""
        now = self._now()
        self._append(
            SpanEvent("instant", name, cat, self._tid(), now, now,
                      len(self._stack()), self._args(args))
        )

    def counter(self, name, value, cat=""):
        """Record a counter sample (e.g. a per-iteration residual)."""
        now = self._now()
        self._append(
            SpanEvent("counter", name, cat, self._tid(), now, now,
                      len(self._stack()), (("value", float(value)),))
        )

    # -- inspection ----------------------------------------------------
    def events(self):
        """Snapshot of all events recorded so far (a copy)."""
        with self._lock:
            return list(self._events)

    def spans(self):
        return [e for e in self.events() if e.kind == "span"]

    def n_threads(self):
        with self._lock:
            return len(self._tids)

    def __len__(self):
        with self._lock:
            return len(self._events)

    def check_wellformed(self, tol=0.0):
        """Assert span nesting is well-formed on every thread.

        Two spans on one thread must be disjoint or strictly nested
        (the stack discipline of the context manager guarantees it;
        this check is what the property tests run against recorded
        output, including under fault injection).  Returns True or
        raises AssertionError naming the offending pair.
        """
        by_thread = {}
        for e in self.spans():
            by_thread.setdefault(e.thread, []).append(e)
        for t, evs in by_thread.items():
            # sort by start time, longer spans first on ties (parents)
            evs.sort(key=lambda e: (e.start, -e.duration))
            stack = []
            for e in evs:
                while stack and e.start >= stack[-1].stop - tol:
                    stack.pop()
                if stack and e.stop > stack[-1].stop + tol:
                    raise AssertionError(
                        f"thread {t}: span {e.name!r} [{e.start}, {e.stop}] "
                        f"overlaps {stack[-1].name!r} "
                        f"[{stack[-1].start}, {stack[-1].stop}] without nesting"
                    )
                stack.append(e)
        return True


# ----------------------------------------------------------------------
# module-level switch + zero-cost facade
# ----------------------------------------------------------------------
def enable() -> SpanRecorder:
    """Install (and return) a fresh process-wide recorder."""
    global _RECORDER
    _RECORDER = SpanRecorder()
    return _RECORDER


def disable():
    """Stop tracing; returns the recorder that was active (or None)."""
    global _RECORDER
    rec, _RECORDER = _RECORDER, None
    return rec


def active():
    """The active :class:`SpanRecorder`, or None when tracing is off."""
    return _RECORDER


def enabled() -> bool:
    return _RECORDER is not None


class tracing:
    """``with tracing() as rec:`` — enable for a block, then restore.

    Restores the *previous* recorder (usually None) on exit, so nested
    uses and test isolation behave.
    """

    def __enter__(self) -> SpanRecorder:
        self._prev = _RECORDER
        return enable()

    def __exit__(self, *exc):
        global _RECORDER
        _RECORDER = self._prev
        return False


def span(name, cat="", **args):
    """A span context manager; free (a shared no-op) when disabled."""
    rec = _RECORDER
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, cat, **args)


def instant(name, cat="", **args):
    """Record an instant event; no-op when disabled."""
    rec = _RECORDER
    if rec is not None:
        rec.instant(name, cat, **args)


def counter(name, value, cat=""):
    """Record a counter sample; no-op when disabled."""
    rec = _RECORDER
    if rec is not None:
        rec.counter(name, value, cat)
