"""Observability layer: spans, Chrome-trace export, metrics.

The shared measurement substrate the perf work gates on (the paper's
scaling story — Figs. 9–13 — is entirely about *where time goes*):

* :mod:`spans` — nested wall-clock spans, instants, counters.
  Disabled by default and free when disabled; instrumentation hooks
  live in the kernel registry, the symbolic cache, the threaded
  runtime, the solvers and the resilience driver.  Enabling spans
  never changes numeric results (the bit-identity tests enforce it).
* :mod:`chrome_trace` — export both real-thread recorders and
  simulated :class:`~repro.machine.trace.ExecutionTrace` timelines to
  Chrome trace-event JSON (``chrome://tracing`` / Perfetto), with
  sync-wait spans, level boundaries and fault-injection instants.
* :mod:`metrics` — a registry of counters/gauges/histograms with a
  versioned snapshot schema (``BENCH_obs.json``'s payload) plus
  collectors for traces, the symbolic cache and roofline utilization.
* :mod:`report` — text flamegraph summaries and metric diffs (the
  ``repro obs`` CLI).

See ``docs/observability.md`` for the span API, the trace-event
schema, and the metrics glossary.
"""

from .spans import (
    SpanEvent,
    SpanRecorder,
    active,
    counter,
    disable,
    enable,
    enabled,
    instant,
    span,
    tracing,
)
from .chrome_trace import (
    chrome_trace,
    execution_trace_events,
    recorder_events,
    transition_lane_events,
    validate_events,
    write_chrome_trace,
)
from .metrics import (
    SCHEMA,
    MetricsRegistry,
    record_cache_metrics,
    record_factor_cache_metrics,
    record_roofline_metrics,
    record_trace_metrics,
    validate_metrics,
)
from .report import (
    aggregate_spans,
    compare_snapshots,
    diff_metrics,
    render_flame,
    render_trace_report,
)

__all__ = [
    "SpanEvent",
    "SpanRecorder",
    "enable",
    "disable",
    "active",
    "enabled",
    "tracing",
    "span",
    "instant",
    "counter",
    "recorder_events",
    "execution_trace_events",
    "transition_lane_events",
    "chrome_trace",
    "write_chrome_trace",
    "validate_events",
    "SCHEMA",
    "MetricsRegistry",
    "validate_metrics",
    "record_trace_metrics",
    "record_cache_metrics",
    "record_factor_cache_metrics",
    "record_roofline_metrics",
    "aggregate_spans",
    "render_flame",
    "render_trace_report",
    "compare_snapshots",
    "diff_metrics",
]
