"""Metrics registry: counters, gauges, histograms with a stable schema.

The durable side of observability: where spans answer *where did this
run spend its time*, the registry answers *how do runs compare* — sync
wait share, level occupancy, cache hit rate, roofline utilization —
as plain numbers with a versioned JSON schema (``SCHEMA``) that
``benchmarks/bench_obs.py`` records and CI gates on.

Instruments are get-or-created by name and thread-safe (the threaded
runtime updates them from workers).  ``snapshot()`` is the only export
path; its layout is the schema :func:`validate_metrics` checks:

.. code-block:: json

    {"schema": "repro.obs.metrics/v1",
     "counters":   {"name": 3.0},
     "gauges":     {"name": 0.82},
     "histograms": {"name": {"count": 8, "sum": ..., "min": ...,
                             "max": ..., "mean": ..., "p50": ...,
                             "p90": ..., "p99": ...}}}

The ``record_*`` helpers derive the standard metric set from the
framework's own objects (ExecutionTrace, SymbolicCache, SimMachine).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_metrics",
    "record_trace_metrics",
    "record_cache_metrics",
    "record_factor_cache_metrics",
    "record_roofline_metrics",
]

SCHEMA = "repro.obs.metrics/v1"


class Counter:
    """Monotonically increasing count."""

    def __init__(self, lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += float(amount)

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    def __init__(self, lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value):
        with self._lock:
            self._value = float(value)

    @property
    def value(self):
        with self._lock:
            return self._value


class Histogram:
    """Value distribution; summarized as count/sum/min/max/mean/percentiles."""

    def __init__(self, lock):
        self._lock = lock
        self._values = []

    def observe(self, value):
        with self._lock:
            self._values.append(float(value))

    def observe_many(self, values):
        with self._lock:
            self._values.extend(float(v) for v in values)

    @property
    def count(self):
        with self._lock:
            return len(self._values)

    def summary(self):
        with self._lock:
            vals = np.asarray(self._values, dtype=np.float64)
        if vals.size == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        p50, p90, p99 = np.percentile(vals, [50.0, 90.0, 99.0])
        return {
            "count": int(vals.size),
            "sum": float(vals.sum()),
            "min": float(vals.min()),
            "max": float(vals.max()),
            "mean": float(vals.mean()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }


class MetricsRegistry:
    """Named instruments, get-or-created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind is an error (it would
    silently fork the metric).
    """

    def __init__(self):
        self._lock = threading.Lock()  # verify: ok[JAV002] obs is the instrumentation layer
        self._instruments = {}

    def _get(self, name, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(self._lock)
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(inst).__name__}, not a {cls.__name__}"
                )
            return inst

    def counter(self, name) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name) -> Histogram:
        return self._get(name, Histogram)

    def names(self):
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self):
        """The full registry as a schema-versioned, JSON-ready dict."""
        with self._lock:
            items = sorted(self._instruments.items())
        out = {"schema": SCHEMA, "counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in items:
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = inst.summary()
        return out


_HIST_KEYS = {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}


def validate_metrics(doc):
    """Schema-check a :meth:`MetricsRegistry.snapshot` document.

    Returns a list of error strings (empty = valid); the check
    ``bench_obs.py --check`` and the CI smoke gate run over
    ``BENCH_obs.json``.
    """
    errors = []
    if not isinstance(doc, dict):
        return [f"snapshot must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"missing section {section!r}")
    if errors:
        return errors
    for section in ("counters", "gauges"):
        for name, v in doc[section].items():
            if not isinstance(v, (int, float)) or v != v:
                errors.append(f"{section}.{name}: non-finite or non-numeric {v!r}")
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict) or set(h) != _HIST_KEYS:
            errors.append(f"histograms.{name}: keys must be {sorted(_HIST_KEYS)}")
            continue
        if not all(isinstance(v, (int, float)) and v == v for v in h.values()):
            errors.append(f"histograms.{name}: non-numeric summary value")
    return errors


# ----------------------------------------------------------------------
# derived collectors: the framework's own objects -> standard metrics
# ----------------------------------------------------------------------
def record_trace_metrics(registry, trace, *, prefix="sim", level_ptr=None):
    """Busy/wait/occupancy metrics of one :class:`ExecutionTrace`.

    Records makespan, total busy time, total per-thread wait (idle gap)
    time, mean utilization, a per-thread utilization histogram (via the
    overlap-safe :meth:`per_thread_utilization`), the number of threads
    with overlapping intervals, and — when ``level_ptr`` is given — a
    per-level occupancy histogram (busy share of each level's window).
    """
    span = trace.makespan()
    registry.gauge(f"{prefix}.makespan").set(span)
    registry.gauge(f"{prefix}.busy_time").set(trace.busy_time())
    registry.gauge(f"{prefix}.utilization").set(trace.utilization())
    per_thread = trace.per_thread_utilization()
    registry.histogram(f"{prefix}.thread_utilization").observe_many(per_thread)
    registry.gauge(f"{prefix}.overlap_threads").set(len(trace.overlapping_threads()))
    wait = registry.counter(f"{prefix}.wait_time")
    n_waits = registry.counter(f"{prefix}.sync_waits")
    for t in range(trace.n_threads):
        cursor = 0.0
        for iv in trace.thread_intervals(t):
            if iv.start > cursor:
                wait.inc(iv.start - cursor)
                n_waits.inc()
            cursor = max(cursor, iv.stop)
        if span > cursor:
            wait.inc(span - cursor)
    if level_ptr is not None:
        occ = registry.histogram(f"{prefix}.level_occupancy")
        level_ptr = [int(x) for x in level_ptr]
        by_row = {
            int(iv.label[1]): iv
            for iv in trace.intervals
            if isinstance(iv.label, tuple) and len(iv.label) == 2 and iv.label[0] == "row"
        }
        for lev in range(len(level_ptr) - 1):
            ivs = [by_row[r] for r in range(level_ptr[lev], level_ptr[lev + 1]) if r in by_row]
            if not ivs:
                continue
            lo = min(iv.start for iv in ivs)
            hi = max(iv.stop for iv in ivs)
            window = (hi - lo) * trace.n_threads
            busy = sum(iv.duration for iv in ivs)
            occ.observe(busy / window if window > 0.0 else 0.0)
    return registry


def record_cache_metrics(registry, cache, *, prefix="cache"):
    """Hit/miss/eviction metrics from a :meth:`SymbolicCache.stats` snapshot."""
    st = cache.stats()
    registry.gauge(f"{prefix}.hits").set(st["hits"])
    registry.gauge(f"{prefix}.misses").set(st["misses"])
    registry.gauge(f"{prefix}.evictions").set(st["evictions"])
    registry.gauge(f"{prefix}.entries").set(st["entries"])
    if "max_entries" in st:
        registry.gauge(f"{prefix}.max_entries").set(st["max_entries"])
    registry.gauge(f"{prefix}.hit_rate").set(st["hit_rate"])
    return registry


def record_factor_cache_metrics(registry, caches=None, *, prefix="factor_cache"):
    """Hit/miss/eviction metrics of the serving factor caches.

    Where :func:`record_cache_metrics` reports the process-wide
    *symbolic* cache, this reports the *factor* caches — the LRU of
    built preconditioners each worker shard / cluster node owns
    (:class:`repro.serve.factor_cache.FactorCache`).  ``caches``
    defaults to every live cache in the process
    (:func:`repro.serve.factor_cache.live_factor_caches`); pass an
    explicit iterable to scope to one service.  Records one gauge set
    per named cache plus the pooled aggregate under ``prefix`` itself.
    """
    if caches is None:
        from ..serve.factor_cache import live_factor_caches

        caches = live_factor_caches()
    caches = list(caches)
    totals = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
    for cache in caches:
        st = cache.stats()
        for key in totals:
            totals[key] += st[key]
        record_cache_metrics(registry, cache, prefix=f"{prefix}.{cache.name}")
    lookups = totals["hits"] + totals["misses"]
    registry.gauge(f"{prefix}.caches").set(len(caches))
    for key, v in totals.items():
        registry.gauge(f"{prefix}.{key}").set(v)
    registry.gauge(f"{prefix}.hit_rate").set(totals["hits"] / lookups if lookups else 0.0)
    return registry


def record_roofline_metrics(registry, trace, machine, flops, touched, *, prefix="roofline"):
    """Achieved vs. peak flop and bandwidth rates on a simulated run.

    ``flops``/``touched`` are the per-row cost arrays the simulation
    charged (``SymbolicAnalysis.factor_costs()``); peak rates come from
    the :class:`SimMachine`'s spec, so the gauges say how close the
    schedule gets to the hardware the paper models.
    """
    span = trace.makespan()
    spec = machine.spec
    flops_total = float(np.sum(flops))
    bytes_total = float(np.sum(touched)) * 12.0  # CSR streaming unit (see machine.core)
    peak_flops = spec.flops_per_core * machine.n_threads
    peak_bw = spec.socket_bw * max(machine.n_sockets_used, 1)
    registry.gauge(f"{prefix}.flops_total").set(flops_total)
    registry.gauge(f"{prefix}.bytes_total").set(bytes_total)
    if span > 0.0:
        registry.gauge(f"{prefix}.flop_utilization").set(flops_total / span / peak_flops)
        registry.gauge(f"{prefix}.bw_utilization").set(bytes_total / span / peak_bw)
    else:
        registry.gauge(f"{prefix}.flop_utilization").set(0.0)
        registry.gauge(f"{prefix}.bw_utilization").set(0.0)
    return registry
