"""Text rendering: flamegraph-style span summaries and metric diffs.

The terminal half of the observability layer (the graphical half is
the Chrome trace export).  :func:`aggregate_spans` folds a recorder's
events into per-name totals with self-time; :func:`render_flame`
prints them as an indentation-free flamegraph summary — one bar per
name, widest first — and :func:`render_trace_report` does the busy vs.
wait per-thread breakdown for simulated traces.  :func:`diff_metrics`
compares two metric snapshots (the ``repro obs diff`` command).
"""

from __future__ import annotations

__all__ = [
    "aggregate_spans",
    "render_flame",
    "render_trace_report",
    "diff_metrics",
]


def aggregate_spans(events):
    """Fold span events into ``{name: {total, self, count}}`` seconds.

    ``total`` is inclusive time, ``self`` excludes time covered by
    spans nested (strictly deeper, within the interval) on the same
    thread — the flamegraph decomposition.
    """
    spans = [e for e in events if getattr(e, "kind", None) == "span"]
    agg = {}
    for e in spans:
        slot = agg.setdefault(e.name, {"total": 0.0, "self": 0.0, "count": 0})
        slot["total"] += e.duration
        slot["count"] += 1
        child_time = sum(
            c.duration
            for c in spans
            if c.thread == e.thread
            and c.depth == e.depth + 1
            and c.start >= e.start
            and c.stop <= e.stop
        )
        slot["self"] += max(e.duration - child_time, 0.0)
    return agg


def _bar(frac, width=30):
    n = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * n + "." * (width - n)


def render_flame(events, *, width=30):
    """Flamegraph-style text summary of recorded spans, widest first."""
    agg = aggregate_spans(events)
    if not agg:
        return "(no spans recorded)"
    grand = sum(v["self"] for v in agg.values()) or 1.0
    name_w = max(len(n) for n in agg) + 1
    lines = [f"{'span':<{name_w}} {'self':>9} {'total':>9} {'count':>6}  share"]
    for name, v in sorted(agg.items(), key=lambda kv: -kv[1]["self"]):
        share = v["self"] / grand
        lines.append(
            f"{name:<{name_w}} {v['self'] * 1e3:8.2f}m {v['total'] * 1e3:8.2f}m "
            f"{v['count']:6d}  |{_bar(share, width)}| {share:5.1%}"
        )
    return "\n".join(lines)


def render_trace_report(trace, *, title="simulated timeline", width=40):
    """Per-thread busy vs. wait breakdown of an :class:`ExecutionTrace`."""
    span = trace.makespan()
    lines = [f"{title}: makespan {span:.3e}s, " f"utilization {trace.utilization():.1%}"]
    if span == 0.0:
        lines.append("(empty trace)")
        return "\n".join(lines)
    per_thread = trace.per_thread_utilization()
    for t in range(trace.n_threads):
        busy = per_thread[t]
        lines.append(
            f"t{t:<3d} |{_bar(busy, width)}| busy {busy:6.1%}  wait {1.0 - busy:6.1%}"
        )
    overlaps = trace.overlapping_threads()
    if overlaps:
        lines.append(f"WARNING: overlapping intervals on threads {overlaps}")
    return "\n".join(lines)


def _flatten(doc):
    """Numeric leaves of a metrics snapshot as ``{dotted.name: value}``."""
    flat = {}
    for section in ("counters", "gauges"):
        for name, v in (doc.get(section) or {}).items():
            flat[f"{section}.{name}"] = float(v)
    for name, h in (doc.get("histograms") or {}).items():
        if isinstance(h, dict):
            for k in ("count", "mean", "p50", "p90", "p99", "max"):
                if k in h:
                    flat[f"histograms.{name}.{k}"] = float(h[k])
    return flat


def diff_metrics(old, new, *, rel_threshold=0.0):
    """Line-per-metric comparison of two snapshot documents.

    Returns the rendered text; metrics present on one side only are
    marked added/removed.  ``rel_threshold`` hides rows whose relative
    change is below the threshold (0 shows everything).
    """
    a, b = _flatten(old), _flatten(new)
    names = sorted(set(a) | set(b))
    if not names:
        return "(no numeric metrics on either side)"
    name_w = max(len(n) for n in names) + 1
    lines = [f"{'metric':<{name_w}} {'old':>12} {'new':>12} {'delta':>12}"]
    for n in names:
        if n not in a:
            lines.append(f"{n:<{name_w}} {'-':>12} {b[n]:12.4g} {'added':>12}")
        elif n not in b:
            lines.append(f"{n:<{name_w}} {a[n]:12.4g} {'-':>12} {'removed':>12}")
        else:
            d = b[n] - a[n]
            rel = abs(d) / abs(a[n]) if a[n] != 0.0 else (0.0 if d == 0.0 else float("inf"))
            if rel < rel_threshold:
                continue
            lines.append(f"{n:<{name_w}} {a[n]:12.4g} {b[n]:12.4g} {d:+12.4g}")
    return "\n".join(lines)
