"""Text rendering: flamegraph-style span summaries and metric diffs.

The terminal half of the observability layer (the graphical half is
the Chrome trace export).  :func:`aggregate_spans` folds a recorder's
events into per-name totals with self-time; :func:`render_flame`
prints them as an indentation-free flamegraph summary — one bar per
name, widest first — and :func:`render_trace_report` does the busy vs.
wait per-thread breakdown for simulated traces.  :func:`compare_snapshots`
structurally diffs two metric snapshots — tolerating malformed
sections, non-numeric leaves, disjoint key sets, and schema-version
mismatches — and :func:`diff_metrics` renders that report as the text
the ``repro obs diff`` command prints.
"""

from __future__ import annotations

__all__ = [
    "aggregate_spans",
    "render_flame",
    "render_trace_report",
    "compare_snapshots",
    "diff_metrics",
]


def aggregate_spans(events):
    """Fold span events into ``{name: {total, self, count}}`` seconds.

    ``total`` is inclusive time, ``self`` excludes time covered by
    spans nested (strictly deeper, within the interval) on the same
    thread — the flamegraph decomposition.
    """
    spans = [e for e in events if getattr(e, "kind", None) == "span"]
    agg = {}
    for e in spans:
        slot = agg.setdefault(e.name, {"total": 0.0, "self": 0.0, "count": 0})
        slot["total"] += e.duration
        slot["count"] += 1
        child_time = sum(
            c.duration
            for c in spans
            if c.thread == e.thread
            and c.depth == e.depth + 1
            and c.start >= e.start
            and c.stop <= e.stop
        )
        slot["self"] += max(e.duration - child_time, 0.0)
    return agg


def _bar(frac, width=30):
    n = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * n + "." * (width - n)


def render_flame(events, *, width=30):
    """Flamegraph-style text summary of recorded spans, widest first."""
    agg = aggregate_spans(events)
    if not agg:
        return "(no spans recorded)"
    grand = sum(v["self"] for v in agg.values()) or 1.0
    name_w = max(len(n) for n in agg) + 1
    lines = [f"{'span':<{name_w}} {'self':>9} {'total':>9} {'count':>6}  share"]
    for name, v in sorted(agg.items(), key=lambda kv: -kv[1]["self"]):
        share = v["self"] / grand
        lines.append(
            f"{name:<{name_w}} {v['self'] * 1e3:8.2f}m {v['total'] * 1e3:8.2f}m "
            f"{v['count']:6d}  |{_bar(share, width)}| {share:5.1%}"
        )
    return "\n".join(lines)


def render_trace_report(trace, *, title="simulated timeline", width=40):
    """Per-thread busy vs. wait breakdown of an :class:`ExecutionTrace`."""
    span = trace.makespan()
    lines = [f"{title}: makespan {span:.3e}s, " f"utilization {trace.utilization():.1%}"]
    if span == 0.0:
        lines.append("(empty trace)")
        return "\n".join(lines)
    per_thread = trace.per_thread_utilization()
    for t in range(trace.n_threads):
        busy = per_thread[t]
        lines.append(
            f"t{t:<3d} |{_bar(busy, width)}| busy {busy:6.1%}  wait {1.0 - busy:6.1%}"
        )
    overlaps = trace.overlapping_threads()
    if overlaps:
        lines.append(f"WARNING: overlapping intervals on threads {overlaps}")
    return "\n".join(lines)


def _flatten(doc, errors=None):
    """Numeric leaves of a metrics snapshot as ``{dotted.name: value}``.

    Never raises on malformed input: a non-dict document or section, or
    a leaf that cannot be coerced to ``float``, is recorded in
    ``errors`` (when given) and skipped.
    """
    flat = {}
    if not isinstance(doc, dict):
        if errors is not None:
            errors.append(f"snapshot is {type(doc).__name__}, expected a dict")
        return flat

    def put(name, v):
        try:
            flat[name] = float(v)
        except (TypeError, ValueError):
            if errors is not None:
                errors.append(f"{name}: non-numeric value {v!r}")

    for section in ("counters", "gauges"):
        sec = doc.get(section) or {}
        if not isinstance(sec, dict):
            if errors is not None:
                errors.append(f"{section}: expected a dict, got {type(sec).__name__}")
            continue
        for name, v in sec.items():
            put(f"{section}.{name}", v)
    hists = doc.get("histograms") or {}
    if not isinstance(hists, dict):
        if errors is not None:
            errors.append(f"histograms: expected a dict, got {type(hists).__name__}")
        hists = {}
    for name, h in hists.items():
        if not isinstance(h, dict):
            if errors is not None:
                errors.append(f"histograms.{name}: expected a dict, got {type(h).__name__}")
            continue
        for k in ("count", "mean", "p50", "p90", "p99", "max"):
            if k in h:
                put(f"histograms.{name}.{k}", h[k])
    return flat


def compare_snapshots(old, new):
    """Structural diff of two metric snapshots; never raises.

    Returns a report dict::

        {"ok": bool,            # no errors and schemas match
         "errors": [str, ...],  # malformed sections / non-numeric leaves
         "schema": {"old": ..., "new": ..., "match": bool},
         "added":   {name: new_value},        # present in new only
         "removed": {name: old_value},        # present in old only
         "changed": {name: (old, new, rel)}}  # both sides, any delta

    ``rel`` is the relative change ``|new-old|/|old|`` (``inf`` when
    old is zero and new is not).  Disjoint key sets land entirely in
    ``added``/``removed`` rather than failing; a schema-version
    mismatch is reported under ``schema`` and flips ``ok`` without
    suppressing the value comparison.
    """
    errors = []
    a, b = _flatten(old, errors), _flatten(new, errors)
    schema_old = old.get("schema") if isinstance(old, dict) else None
    schema_new = new.get("schema") if isinstance(new, dict) else None
    schema_match = schema_old == schema_new
    if not schema_match:
        errors.append(f"schema mismatch: old {schema_old!r} vs new {schema_new!r}")
    added = {n: b[n] for n in b if n not in a}
    removed = {n: a[n] for n in a if n not in b}
    changed = {}
    for n in sorted(set(a) & set(b)):
        if a[n] == b[n]:
            continue
        d = b[n] - a[n]
        rel = abs(d) / abs(a[n]) if a[n] != 0.0 else float("inf")
        changed[n] = (a[n], b[n], rel)
    return {
        "ok": not errors,
        "errors": errors,
        "schema": {"old": schema_old, "new": schema_new, "match": schema_match},
        "added": added,
        "removed": removed,
        "changed": changed,
    }


def diff_metrics(old, new, *, rel_threshold=0.0):
    """Line-per-metric comparison of two snapshot documents.

    A text rendering of :func:`compare_snapshots`: metrics present on
    one side only are marked added/removed, and any structural errors
    (schema mismatch, malformed sections) are listed first.
    ``rel_threshold`` hides changed rows below the threshold (0 shows
    everything).  Never raises on malformed input.
    """
    rep = compare_snapshots(old, new)
    a, b = _flatten(old), _flatten(new)
    lines = [f"WARNING: {e}" for e in rep["errors"]]
    names = sorted(set(a) | set(b))
    if not names:
        lines.append("(no numeric metrics on either side)")
        return "\n".join(lines)
    name_w = max(len(n) for n in names) + 1
    lines.append(f"{'metric':<{name_w}} {'old':>12} {'new':>12} {'delta':>12}")
    for n in names:
        if n in rep["added"]:
            lines.append(f"{n:<{name_w}} {'-':>12} {b[n]:12.4g} {'added':>12}")
        elif n in rep["removed"]:
            lines.append(f"{n:<{name_w}} {a[n]:12.4g} {'-':>12} {'removed':>12}")
        else:
            rel = rep["changed"][n][2] if n in rep["changed"] else 0.0
            if rel < rel_threshold:
                continue
            lines.append(f"{n:<{name_w}} {a[n]:12.4g} {b[n]:12.4g} {b[n] - a[n]:+12.4g}")
    return "\n".join(lines)
