"""Power-flow style Newton solver over the serve API.

Nonlinear network balance on a circuit-style graph
(:func:`repro.matrices.circuit_network`):

    F(x) = G·x + s·sinh(x) − λ·p = 0

— a standard surrogate for AC power-flow equations: a linear
conductance network ``G`` plus an elementwise hyperbolic injection
term (the sinh keeps the Jacobian symmetric-positive-dominant while
being genuinely nonlinear).  The Jacobian

    J(x) = G + s·diag(cosh(x))

shares ``G``'s sparsity pattern exactly — cosh only touches the
structurally present diagonal — so every Newton iteration is a
value-only matrix update followed by one linear solve, the same shape
as the heat stepper but with *solution-driven* (not scripted) value
drift.

The load ramps over ``load_steps`` continuation levels λ ∈ (0, 1]
(classic power-flow load ramp), warm-starting each level from the
previous solution: many Newton solves against one pattern, which is
what makes the cached-symbolic refactor path pay.
"""

from __future__ import annotations

import numpy as np

from ..kernels import diag_positions
from ..matrices import circuit_network
from ..sparse import spmv_csr
from .session import AppSession

__all__ = ["PowerFlowNewton"]


class PowerFlowNewton:
    """Newton continuation on a nonlinear conductance network."""

    def __init__(
        self,
        n=240,
        *,
        s=0.5,
        seed=0,
        load_steps=4,
        newton_tol=1e-9,
        max_newton=16,
        staleness=None,
        solver="richardson",
        tol=1e-10,
        maxiter=800,
        options=None,
        registry=None,
    ):
        self.n = int(n)
        self.s = float(s)
        self.load_steps = int(load_steps)
        self.newton_tol = float(newton_tol)
        self.max_newton = int(max_newton)
        self.G = circuit_network(self.n, seed=seed)
        self._diag = diag_positions(self.G)
        # target injections from a known operating point, so a solution
        # exists at full load and Newton has something to converge to
        rng = np.random.default_rng(seed + 1)
        self.x_star = 0.4 * rng.standard_normal(self.n)
        self.p = spmv_csr(self.G, self.x_star) + self.s * np.sinh(self.x_star)
        self.x = np.zeros(self.n)
        self.newton_history: list[dict] = []
        self.session = AppSession(
            self.jacobian(self.x),
            key="powerflow",
            solver=solver,
            tol=tol,
            maxiter=maxiter,
            staleness=staleness,
            options=options,
            registry=registry,
        )

    # ------------------------------------------------------------------
    def residual(self, x, load):
        return spmv_csr(self.G, x) + self.s * np.sinh(x) - load * self.p

    def jacobian(self, x):
        """``G + s·diag(cosh(x))`` — same pattern as G, values follow x."""
        J = self.G.copy()
        J.data[self._diag] += self.s * np.cosh(x)
        return J

    # ------------------------------------------------------------------
    def solve(self):
        """Run the full load-ramp continuation; returns Newton history.

        Each entry records one Newton iteration: the load level, the
        nonlinear residual norm before the update, and the serve-layer
        step record of the linear solve.
        """
        scale = float(np.linalg.norm(self.p))
        for k in range(1, self.load_steps + 1):
            lam = k / self.load_steps
            for it in range(self.max_newton):
                F = self.residual(self.x, lam)
                fnorm = float(np.linalg.norm(F))
                if fnorm <= self.newton_tol * max(1.0, lam * scale):
                    break
                rec = self.session.step(-F, A_new=self.jacobian(self.x))
                if rec.x is None or rec.outcome == "breakdown":
                    raise RuntimeError(
                        f"linear solve failed at load {lam:g}, newton {it}"
                    )
                self.x = self.x + rec.x
                self.newton_history.append(
                    {"load": lam, "newton_iter": it, "fnorm": fnorm, "step": rec.to_dict()}
                )
        return self.newton_history

    def final_residual(self):
        """Nonlinear residual norm at full load for the current iterate."""
        return float(np.linalg.norm(self.residual(self.x, 1.0)))

    def summary(self):
        s = self.session.summary()
        s["app"] = "powerflow"
        s["n"] = self.n
        s["newton_iterations"] = len(self.newton_history)
        s["final_residual"] = self.final_residual()
        return s
