"""Implicit heat/convection time-stepper on a 2D structured grid.

Backward-Euler discretization of the convection–diffusion equation
``u_t = κ(t) ∇²u − v(t)·∇u``: each step solves

    (I + Δt·κ(t)·A(v(t))) u^{t+1} = u^t

where ``A(v)`` is the 5-point upwind operator
(:func:`repro.matrices.grid2d` with ``shift=0``).  The coefficients
drift smoothly and deterministically — a sinusoidal diffusivity and a
ramping convection velocity — so the *values* of the system matrix
change every step while its *pattern* never does.  That is precisely
the traffic shape the value-only re-factorization path exists for:
under the ``"refactor"`` staleness policy every step is a numeric-only
refresh of the cached symbolic setup; under ``"stale"`` the old factor
keeps serving until iteration counts degrade; ``"cold"`` rebuilds from
scratch and is the baseline the bench compares against.

Everything is seeded and virtual-clocked; the same configuration
replays bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

from ..kernels import diag_positions
from ..matrices import grid2d
from .session import AppSession

__all__ = ["HeatStepper"]


class HeatStepper:
    """Drive the serve API with an implicit convection–diffusion loop."""

    def __init__(
        self,
        nx,
        ny=None,
        *,
        dt=0.05,
        kappa=1.0,
        kappa_drift=0.3,
        convection=0.2,
        convection_drift=0.4,
        period=32,
        seed=0,
        staleness=None,
        solver="richardson",
        tol=1e-8,
        maxiter=500,
        options=None,
        registry=None,
    ):
        if not 0.0 <= kappa_drift < 1.0:
            raise ValueError(f"kappa_drift must be in [0, 1), got {kappa_drift}")
        self.nx = int(nx)
        self.ny = int(ny) if ny is not None else int(nx)
        self.n = self.nx * self.ny
        self.dt = float(dt)
        self.kappa = float(kappa)
        self.kappa_drift = float(kappa_drift)
        self.convection = float(convection)
        self.convection_drift = float(convection_drift)
        self.period = int(period)
        rng = np.random.default_rng(seed)
        self.u = rng.standard_normal(self.n)
        self.t = 0
        self.session = AppSession(
            self.matrix(0),
            key="heat",
            solver=solver,
            tol=tol,
            maxiter=maxiter,
            staleness=staleness,
            options=options,
            registry=registry,
        )

    # ------------------------------------------------------------------
    def coefficients(self, step):
        """Deterministic smooth drift of ``(κ, v)`` at a given step."""
        phase = 2.0 * math.pi * step / self.period
        kappa_t = self.kappa * (1.0 + self.kappa_drift * math.sin(phase))
        conv_t = self.convection + self.convection_drift * 0.5 * (1.0 - math.cos(phase))
        return kappa_t, conv_t

    def matrix(self, step):
        """The implicit system ``I + Δt·κ·A(v)`` at a given step.

        The pattern is the 5-point stencil plus diagonal regardless of
        the coefficients — only ``data`` moves between steps, which the
        serve layer detects as a value-only update.
        """
        kappa_t, conv_t = self.coefficients(step)
        M = grid2d(self.nx, self.ny, convection=conv_t, shift=0.0)
        M.data *= self.dt * kappa_t
        M.data[diag_positions(M)] += 1.0
        return M

    # ------------------------------------------------------------------
    def step(self):
        """Advance one backward-Euler step through the serve API."""
        self.t += 1
        rec = self.session.step(self.u, A_new=self.matrix(self.t))
        if rec.x is not None:
            self.u = rec.x
        return rec

    def run(self, n_steps):
        """Advance ``n_steps`` steps; returns the step records."""
        return [self.step() for _ in range(int(n_steps))]

    def summary(self):
        s = self.session.summary()
        s["app"] = "heat"
        s["n"] = self.n
        return s
