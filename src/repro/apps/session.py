"""AppSession: drive the solve service one step at a time.

The serve layer's workload driver fires batches of independent
requests; an *application* is the opposite shape — a sequential loop
where step ``t+1``'s matrix and right-hand side depend on step ``t``'s
solution (implicit time-steppers, Newton iterations).  The session
wraps one :class:`~repro.serve.SolveService` around one registered
matrix key and exposes exactly that loop:

    rec = session.step(b, A_new=J)   # update values, solve, record

Each step optionally swaps the matrix values
(:meth:`SolveService.update_matrix` — value-only updates revalue or
serve stale per the service's
:class:`~repro.serve.staleness.StalenessPolicy`), submits a single
request, runs the virtual-clock event loop to completion, and appends
a :class:`StepRecord`.  The per-step records are the apps bench's raw
material: iteration-drift curves, refactor counts, virtual steps/sec.

Time remains virtual throughout: one step's ``virtual_time`` is the
service time the :class:`~repro.serve.CostModel` charged, so two runs
with the same seed produce bit-identical histories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..serve import SolveRequest, SolveService, StalenessPolicy

__all__ = ["StepRecord", "AppSession"]


@dataclass(eq=False)
class StepRecord:
    """One application step: what was solved and what it cost."""

    step: int
    outcome: str
    iterations: int
    residual: float
    converged: bool
    #: virtual service time of this step (arrival → finish, clock reset per step)
    virtual_time: float
    #: what the matrix update was: "none", "unchanged", "values_changed",
    #: or "pattern_changed"
    update: str
    variant: str | None
    x: np.ndarray | None

    def to_dict(self):
        """JSON-ready summary (the solution vector is omitted)."""
        return {
            "step": int(self.step),
            "outcome": self.outcome,
            "iterations": int(self.iterations),
            "residual": float(self.residual),
            "converged": bool(self.converged),
            "virtual_time": float(self.virtual_time),
            "update": self.update,
            "variant": self.variant,
        }


class AppSession:
    """One matrix key, one tenant, one step-by-step solve loop."""

    def __init__(
        self,
        A,
        *,
        key="app",
        solver="richardson",
        tol=1e-8,
        maxiter=500,
        staleness: StalenessPolicy | None = None,
        options=None,
        registry=None,
    ):
        self.key = str(key)
        self.solver = solver
        self.tol = float(tol)
        self.maxiter = int(maxiter)
        self.service = SolveService(
            {self.key: A},
            n_shards=1,
            staleness=staleness,
            options=options,
            registry=registry,
        )
        self._rid = 0
        self.history: list[StepRecord] = []
        self.virtual_total = 0.0

    @property
    def shard(self):
        """The single worker shard behind this session."""
        return self.service.shards[0]

    def step(self, b, A_new=None) -> StepRecord:
        """Solve ``A x = b`` after optionally updating the matrix values."""
        update = "none"
        if A_new is not None:
            update = self.service.update_matrix(self.key, A_new)
        req = SolveRequest(
            request_id=self._rid,
            tenant="app",
            matrix_key=self.key,
            b=b,
            solver=self.solver,
            tol=self.tol,
            maxiter=self.maxiter,
        )
        self._rid += 1
        res = self.service.run([req])[0]
        rec = StepRecord(
            step=len(self.history),
            outcome=res.outcome,
            iterations=res.iterations,
            residual=res.residual,
            converged=res.converged,
            virtual_time=res.finish_time,
            update=update,
            variant=res.variant,
            x=res.x,
        )
        self.history.append(rec)
        self.virtual_total += rec.virtual_time
        return rec

    # ------------------------------------------------------------------
    def iteration_curve(self):
        """Per-step iteration counts — the staleness drift signal."""
        return [int(r.iterations) for r in self.history]

    def summary(self):
        """Scalar roll-up for the apps bench record."""
        n = len(self.history)
        shard = self.shard
        vt = self.virtual_total
        return {
            "steps": n,
            "virtual_total": float(vt),
            "steps_per_sec": (n / vt) if vt > 0 else math.nan,
            "mean_iterations": (
                float(np.mean([r.iterations for r in self.history])) if n else math.nan
            ),
            "outcomes": {
                o: sum(1 for r in self.history if r.outcome == o)
                for o in sorted({r.outcome for r in self.history})
            },
            "cold_builds": shard.n_cold,
            "refactors": shard.n_refactors,
            "stale_steps": shard.n_stale_steps,
            "iteration_curve": self.iteration_curve(),
        }
