"""``repro apps bench [--check]`` — the time-evolving workload benchmark.

Runs the two application drivers (implicit heat/convection stepper,
power-flow Newton continuation) against the serve API under each
factor-staleness policy and writes ``BENCH_apps.json``:

* **steps/sec** (virtual clock) for cold-rebuild vs value-only
  refactor vs stale-factor serving — the setup-amortization tradeoff
  the paper motivates, measured end-to-end;
* **iteration-drift curves** — per-step iteration counts under each
  policy (the stale policy's degradation signal, plotted raw);
* **refactor bit-identity gates** — a value-only refactor must be
  bitwise equal to a from-scratch factorization of the same values,
  must reuse the cached symbolic products (no new symbolic-cache
  misses), and must be measurably cheaper than a cold setup in both
  wall-clock and virtual charge;
* **staleness sanity gates** — the stale policy actually skips
  refactors, drifts iterations upward, and still serves everything.

``--check`` shrinks sizes and step counts for CI; the gates are
identical.  Everything is seeded — two runs of the same command
produce the same JSON (modulo the wall-clock timing section, which is
measurement, not simulation).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _core_refactor_gates(gate, *, size, n_values, fill_level=1):
    """Bit-identity, symbolic reuse, and cost advantage of refactor().

    Times ``n_values`` cold ``setup+factor`` runs against the same
    values applied through ``refactor()`` on one warm instance.  The
    symbolic cache is cleared before the cold runs so "cold" honestly
    pays the analysis the refactor path amortizes.
    """
    import time  # verify: ok[JAV005] — bench-only wall-clock measurement

    from ..core import JavelinILU, JavelinOptions
    from ..kernels.cache import default_cache
    from ..matrices import grid2d

    opts = JavelinOptions(fill_level=fill_level)
    values = [grid2d(size, convection=0.05 * (j + 1)) for j in range(n_values)]

    default_cache().clear()
    cold_results = []
    t0 = time.perf_counter()  # verify: ok[JAV005]
    for B in values:
        default_cache().clear()
        cold_results.append(JavelinILU(opts).setup(B).factor())
    cold_time = time.perf_counter() - t0  # verify: ok[JAV005]

    warm = JavelinILU(opts).setup(grid2d(size))
    warm.factor()
    stats_before = default_cache().stats()
    t0 = time.perf_counter()  # verify: ok[JAV005]
    warm_results = [warm.refactor(B) for B in values]
    warm_time = time.perf_counter() - t0  # verify: ok[JAV005]
    stats_after = default_cache().stats()

    identical = all(
        np.array_equal(c.F.data, w.F.data)
        and np.array_equal(c.F.indices, w.F.indices)
        for c, w in zip(cold_results, warm_results)
    )
    gate(identical, "value-only refactor bitwise equals cold factorization")
    gate(
        stats_after["misses"] == stats_before["misses"],
        "refactor reuses cached symbolic products (no new cache misses)",
    )
    gate(warm_time < cold_time, "value-only refactor wall-clock cheaper than cold setup")
    return {
        "size": size,
        "n_values": n_values,
        "cold_seconds": cold_time,
        "refactor_seconds": warm_time,
        "refactor_speedup": (cold_time / warm_time) if warm_time > 0 else float("inf"),
        "symbolic_cache_hits_during_refactor": stats_after["hits"] - stats_before["hits"],
        "symbolic_cache_misses_during_refactor": stats_after["misses"] - stats_before["misses"],
    }


def _heat_sweep(gate, *, nx, n_steps, seed):
    """Heat stepper under each staleness policy + cross-policy gates."""
    from ..serve import StalenessPolicy
    from .heat import HeatStepper

    runs = {}
    solutions = {}
    for mode in ("cold", "refactor", "stale"):
        stepper = HeatStepper(nx, seed=seed, staleness=StalenessPolicy(mode=mode))
        records = stepper.run(n_steps)
        runs[mode] = stepper.summary()
        solutions[mode] = [r.x for r in records]
    gate(
        all(
            sum(run["outcomes"].values()) == run["outcomes"].get("served", 0)
            for run in runs.values()
        ),
        "heat: every step served under every policy",
    )
    gate(
        all(
            np.array_equal(a, b)
            for a, b in zip(solutions["cold"], solutions["refactor"])
        ),
        "heat: refactor-policy solutions bitwise equal cold-policy (identity end-to-end)",
    )
    gate(
        runs["refactor"]["steps_per_sec"] > runs["cold"]["steps_per_sec"],
        "heat: value-only refactor beats cold rebuild on virtual steps/sec",
    )
    gate(
        runs["stale"]["refactors"] < runs["refactor"]["refactors"]
        and runs["stale"]["stale_steps"] > 0,
        "heat: stale policy actually skips refactors",
    )
    drift = runs["stale"]["iteration_curve"]
    gate(
        max(drift) >= drift[0],
        "heat: stale policy's iteration curve records drift",
    )
    return runs


def _powerflow_run(gate, *, n, seed):
    """Newton continuation under refactor vs cold, with identity gate."""
    from ..serve import StalenessPolicy
    from .powerflow import PowerFlowNewton

    runs = {}
    finals = {}
    for mode in ("cold", "refactor"):
        pf = PowerFlowNewton(n, seed=seed, staleness=StalenessPolicy(mode=mode))
        pf.solve()
        runs[mode] = pf.summary()
        finals[mode] = pf.x
    gate(
        runs["refactor"]["final_residual"] < 1e-6,
        "powerflow: Newton converged at full load",
    )
    gate(
        np.array_equal(finals["cold"], finals["refactor"]),
        "powerflow: Newton iterates bitwise identical under cold vs refactor",
    )
    gate(
        runs["refactor"]["refactors"] > 0,
        "powerflow: Newton loop exercises the value-only path",
    )
    gate(
        runs["refactor"]["steps_per_sec"] > runs["cold"]["steps_per_sec"],
        "powerflow: value-only refactor beats cold rebuild on virtual steps/sec",
    )
    return runs


def run_bench(*, check=False, seed=0, out_path="BENCH_apps.json"):
    """Run the apps bench; returns ``(record, n_failures)``.

    The callable behind both ``repro apps bench`` and
    ``benchmarks/bench_apps.py`` (which points ``out_path`` at the
    shared results directory).
    """
    from ..obs.metrics import MetricsRegistry, validate_metrics
    from ..serve import StalenessPolicy
    from .heat import HeatStepper

    failures = []

    def gate(ok, name):
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {name}")
        if not ok:
            failures.append(name)

    print("apps bench: value-only refactor identity + cost")
    core = _core_refactor_gates(
        gate,
        size=8 if check else 16,
        n_values=3 if check else 6,
    )
    print(
        f"    cold {core['cold_seconds']:.4f}s vs refactor "
        f"{core['refactor_seconds']:.4f}s ({core['refactor_speedup']:.2f}x)"
    )

    print("apps bench: implicit heat/convection stepper (policy sweep)")
    heat = _heat_sweep(
        gate,
        nx=8 if check else 14,
        n_steps=6 if check else 24,
        seed=seed,
    )
    for mode in ("cold", "refactor", "stale"):
        s = heat[mode]
        print(
            f"    {mode:>8}: {s['steps_per_sec']:8.1f} steps/s (virtual), "
            f"cold {s['cold_builds']}, refactors {s['refactors']}, "
            f"stale {s['stale_steps']}"
        )

    print("apps bench: power-flow Newton continuation")
    power = _powerflow_run(gate, n=120 if check else 240, seed=seed)
    print(
        f"    newton iterations {power['refactor']['newton_iterations']}, "
        f"final residual {power['refactor']['final_residual']:.2e}, "
        f"refactors {power['refactor']['refactors']}"
    )

    registry = MetricsRegistry()
    metered = HeatStepper(
        8,
        seed=seed,
        staleness=StalenessPolicy(mode="refactor"),
        registry=registry,
    )
    metered.run(4)
    snapshot = registry.snapshot()
    gate(not validate_metrics(snapshot), "metrics snapshot validates")
    gate(
        snapshot["counters"].get("serve.refactors", 0) > 0,
        "serve.refactors counter wired through obs",
    )

    record = {
        "bench": "apps",
        "mode": "check" if check else "full",
        "seed": seed,
        "core_refactor": core,
        "heat": heat,
        "powerflow": power,
        "failures": failures,
        "metrics": snapshot,
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(record, fh, indent=2)
        print(f"wrote {out_path}")
    return record, len(failures)


def cmd_bench(args):
    _, n_failures = run_bench(check=args.check, seed=args.seed, out_path=args.out)
    if n_failures:
        print(f"apps bench: {n_failures} gate(s) FAILED")
        return 1
    print("apps bench: all gates passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro apps", description="application drivers over the serve API"
    )
    sub = p.add_subparsers(dest="command", required=True)
    sp = sub.add_parser("bench", help="run the apps benchmark, write BENCH_apps.json")
    sp.add_argument("--check", action="store_true", help="fast CI gate (small sizes)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--out", default="BENCH_apps.json", help="output path ('' to skip)")
    sp.set_defaults(func=cmd_bench)
    return p


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
