"""repro.apps — applications that drive the serve API step-by-step.

The layers below serve *independent* requests; this package supplies
the dependent kind — sequential loops where each step's matrix values
come from the previous step's solution or a drifting coefficient
field.  That is the traffic the paper's setup-amortization argument is
actually about: one sparsity pattern, thousands of numeric updates.

* :mod:`repro.apps.session` — :class:`AppSession`, the step-by-step
  driver over one :class:`~repro.serve.SolveService` matrix key;
* :mod:`repro.apps.heat` — :class:`HeatStepper`, an implicit
  convection–diffusion time-stepper with smoothly drifting
  coefficients (scripted value drift, fixed 5-point pattern);
* :mod:`repro.apps.powerflow` — :class:`PowerFlowNewton`, a Newton
  load-ramp continuation on a nonlinear conductance network
  (solution-driven value drift, fixed circuit pattern);
* :mod:`repro.apps.cli` — ``repro apps bench [--check]``, writing
  ``BENCH_apps.json``: cold-rebuild vs value-only-refactor vs
  stale-factor steps/sec, iteration-drift curves, and the refactor
  bit-identity gates.

Everything inherits the serve layer's determinism: virtual clock,
seeded numerics, bit-identical replays.
"""

from .session import AppSession, StepRecord
from .heat import HeatStepper
from .powerflow import PowerFlowNewton

__all__ = ["AppSession", "StepRecord", "HeatStepper", "PowerFlowNewton"]
