"""Bounded admission queue with backpressure and per-tenant fairness.

The waiting room between arrival and batch formation.  Three concerns
live here and nowhere else:

* **Backpressure.**  The queue holds at most ``capacity`` requests.
  Past that, policy ``"reject"`` bounces the newcomer and
  ``"shed_oldest"`` evicts the longest-waiting request instead (the
  newcomer is fresher and therefore likelier to make its deadline).
  Either way :meth:`push` returns the displaced requests so the
  service can terminate them with a ``rejected`` outcome — backpressure
  never silently drops work.

* **Per-tenant fairness.**  Default extraction round-robins across the
  tenants waiting in a batch group, so one chatty tenant cannot
  monopolize a batch; within a tenant, higher ``priority`` goes first,
  ties broken by ``(arrival_time, request_id)``.  The alternative
  ``edf`` mode orders globally by SLA class then deadline
  (deadline-aware earliest-deadline-first).

* **Group indexing.**  Requests are bucketed by ``batch_key`` so the
  micro-batcher (:mod:`repro.serve.batcher`) can ask "how many are
  waiting to share a batch, since when, and how urgent" in O(groups).

Deliberately lock-free: the deterministic service core is
single-threaded (JAV002 — synchronization primitives live in
``runtime/`` and ``serve/workers.py`` only); thread-safe ingestion is
:meth:`repro.serve.workers.SolveService.submit`'s job.
"""

from __future__ import annotations

import math

__all__ = ["ADMISSION_POLICIES", "FAIRNESS_MODES", "AdmissionQueue"]

ADMISSION_POLICIES = ("reject", "shed_oldest")

#: extraction orders: ``round_robin`` rotates across tenants (the
#: default, throughput-fair); ``edf`` is deadline-aware earliest-
#: deadline-first, ordered by ``(sla_rank, deadline, arrival, id)`` —
#: SLA class outranks raw deadline so an "interactive" tenant's
#: contract holds even against urgent "batch" stragglers.
FAIRNESS_MODES = ("round_robin", "edf")


class AdmissionQueue:
    """Bounded, group-indexed, tenant-fair waiting room."""

    def __init__(self, capacity=64, policy="reject", fairness="round_robin"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(f"policy must be one of {ADMISSION_POLICIES}, got {policy!r}")
        if fairness not in FAIRNESS_MODES:
            raise ValueError(f"fairness must be one of {FAIRNESS_MODES}, got {fairness!r}")
        self.capacity = int(capacity)
        self.policy = policy
        self.fairness = fairness
        # group key -> tenant -> list of requests (kept extraction-sorted)
        self._groups: dict = {}
        # group key -> rotating tenant offset (the round-robin cursor)
        self._cursor: dict = {}
        self._depth = 0
        self.peak_depth = 0
        self.n_admitted = 0
        self.n_displaced = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def push(self, req):
        """Admit ``req``; returns the list of displaced requests.

        ``[]`` — admitted, nobody displaced.  ``[req]`` — queue full
        under the ``reject`` policy, the newcomer bounced.  Under
        ``shed_oldest`` a full queue sheds its globally oldest waiting
        request (by ``(arrival_time, request_id)``) to make room, and
        that victim is returned instead.
        """
        displaced = []
        if self._depth >= self.capacity:
            if self.policy == "reject":
                self.n_displaced += 1
                return [req]
            victim = self._shed_oldest()
            if victim is not None:
                displaced.append(victim)
                self.n_displaced += 1
        bucket = self._groups.setdefault(req.batch_key, {})
        lane = bucket.setdefault(req.tenant, [])
        lane.append(req)
        lane.sort(key=_lane_order)
        self._depth += 1
        self.n_admitted += 1
        self.peak_depth = max(self.peak_depth, self._depth)
        return displaced

    def _shed_oldest(self):
        oldest, where = None, None
        for key, bucket in self._groups.items():
            for tenant, lane in bucket.items():
                for req in lane:
                    stamp = (req.arrival_time, req.request_id)
                    if oldest is None or stamp < oldest:
                        oldest, where = stamp, (key, tenant, req)
        if where is None:
            return None
        key, tenant, req = where
        self._groups[key][tenant].remove(req)
        self._prune(key, tenant)
        self._depth -= 1
        return req

    # ------------------------------------------------------------------
    # extraction (the micro-batcher's side)
    # ------------------------------------------------------------------
    def take(self, key, k):
        """Up to ``k`` requests of group ``key``, in fair order.

        Under ``round_robin`` fairness, rotates across the group's
        tenants (cursor persists across calls, so a group repeatedly
        batched keeps rotating who goes first); each tenant contributes
        its own best request — highest priority, then earliest arrival
        — per turn.  Under ``edf``, extraction is deadline-aware:
        globally ordered by ``(sla_rank, deadline, arrival_time,
        request_id)``, tenants ignored.
        """
        if self.fairness == "edf":
            return self._take_edf(key, k)
        bucket = self._groups.get(key)
        if not bucket:
            return []
        out = []
        tenants = sorted(bucket)
        start = self._cursor.get(key, 0) % len(tenants)
        tenants = tenants[start:] + tenants[:start]
        turns = 0
        while len(out) < int(k):
            progressed = False
            for tenant in tenants:
                lane = bucket.get(tenant)
                if not lane:
                    continue
                out.append(lane.pop(0))
                progressed = True
                turns += 1
                if len(out) >= int(k):
                    break
            if not progressed:
                break
        for tenant in list(bucket):
            self._prune(key, tenant)
        # Advance by pops *modulo a full rotation*, not by raw pops:
        # when a take drains exactly c full cycles (turns % n == 0) the
        # raw advance would land back on `start` and the same tenant
        # would lead every batch.  A completed rotation means everyone
        # was served once, so the lead moves one step; a partial cycle
        # resumes at the first unserved tenant, as before.  The cursor
        # survives the group emptying — a group that refills and fully
        # drains every batch round must still rotate its lead.
        n = len(tenants)
        step = turns % n
        if turns and step == 0:
            step = 1
        self._cursor[key] = (start + step) % max(1, n)
        self._depth -= len(out)
        return out

    def _take_edf(self, key, k):
        """Deadline-aware extraction: tightest contract first."""
        bucket = self._groups.get(key)
        if not bucket:
            return []
        waiting = [req for lane in bucket.values() for req in lane]
        waiting.sort(key=_edf_order)
        out = waiting[: int(k)]
        for req in out:
            bucket[req.tenant].remove(req)
        for tenant in list(bucket):
            self._prune(key, tenant)
        if key not in self._groups:
            self._cursor.pop(key, None)
        self._depth -= len(out)
        return out

    def _prune(self, key, tenant):
        bucket = self._groups.get(key)
        if bucket is None:
            return
        if tenant in bucket and not bucket[tenant]:
            del bucket[tenant]
        if not bucket:
            del self._groups[key]

    # ------------------------------------------------------------------
    # group views (read-only, for batching policy)
    # ------------------------------------------------------------------
    def group_sizes(self):
        """``{batch_key: waiting count}`` over non-empty groups."""
        return {
            key: sum(len(lane) for lane in bucket.values())
            for key, bucket in self._groups.items()
        }

    def oldest_arrival(self, key):
        """Earliest ``arrival_time`` waiting in group ``key`` (inf if empty)."""
        bucket = self._groups.get(key, {})
        times = [req.arrival_time for lane in bucket.values() for req in lane]
        return min(times) if times else math.inf

    def min_deadline(self, key):
        """Tightest deadline waiting in group ``key`` (inf if empty)."""
        bucket = self._groups.get(key, {})
        deadlines = [req.deadline for lane in bucket.values() for req in lane]
        return min(deadlines) if deadlines else math.inf

    def oldest_arrival_sla(self, key, sla):
        """Earliest arrival of an ``sla``-class request in group ``key``.

        ``inf`` when no request of that class is waiting — the
        SLA-aware batch-close rule only engages for classes actually
        present in the forming batch.
        """
        bucket = self._groups.get(key, {})
        times = [
            req.arrival_time
            for lane in bucket.values()
            for req in lane
            if req.sla == sla
        ]
        return min(times) if times else math.inf

    def __len__(self):
        return self._depth

    def __bool__(self):
        return self._depth > 0


def _lane_order(req):
    return (-req.priority, req.arrival_time, req.request_id)


def _edf_order(req):
    return (req.sla_rank, req.deadline, req.arrival_time, req.request_id)
