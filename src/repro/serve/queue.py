"""Bounded admission queue with backpressure and per-tenant fairness.

The waiting room between arrival and batch formation.  Three concerns
live here and nowhere else:

* **Backpressure.**  The queue holds at most ``capacity`` requests.
  Past that, policy ``"reject"`` bounces the newcomer and
  ``"shed_oldest"`` evicts the longest-waiting request instead (the
  newcomer is fresher and therefore likelier to make its deadline).
  Either way :meth:`push` returns the displaced requests so the
  service can terminate them with a ``rejected`` outcome — backpressure
  never silently drops work.

* **Per-tenant fairness.**  Extraction round-robins across the tenants
  waiting in a batch group, so one chatty tenant cannot monopolize a
  batch; within a tenant, higher ``priority`` goes first, ties broken
  by ``(arrival_time, request_id)``.

* **Group indexing.**  Requests are bucketed by ``batch_key`` so the
  micro-batcher (:mod:`repro.serve.batcher`) can ask "how many are
  waiting to share a batch, since when, and how urgent" in O(groups).

Deliberately lock-free: the deterministic service core is
single-threaded (JAV002 — synchronization primitives live in
``runtime/`` and ``serve/workers.py`` only); thread-safe ingestion is
:meth:`repro.serve.workers.SolveService.submit`'s job.
"""

from __future__ import annotations

import math

__all__ = ["ADMISSION_POLICIES", "AdmissionQueue"]

ADMISSION_POLICIES = ("reject", "shed_oldest")


class AdmissionQueue:
    """Bounded, group-indexed, tenant-fair waiting room."""

    def __init__(self, capacity=64, policy="reject"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(f"policy must be one of {ADMISSION_POLICIES}, got {policy!r}")
        self.capacity = int(capacity)
        self.policy = policy
        # group key -> tenant -> list of requests (kept extraction-sorted)
        self._groups: dict = {}
        # group key -> rotating tenant offset (the round-robin cursor)
        self._cursor: dict = {}
        self._depth = 0
        self.peak_depth = 0
        self.n_admitted = 0
        self.n_displaced = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def push(self, req):
        """Admit ``req``; returns the list of displaced requests.

        ``[]`` — admitted, nobody displaced.  ``[req]`` — queue full
        under the ``reject`` policy, the newcomer bounced.  Under
        ``shed_oldest`` a full queue sheds its globally oldest waiting
        request (by ``(arrival_time, request_id)``) to make room, and
        that victim is returned instead.
        """
        displaced = []
        if self._depth >= self.capacity:
            if self.policy == "reject":
                self.n_displaced += 1
                return [req]
            victim = self._shed_oldest()
            if victim is not None:
                displaced.append(victim)
                self.n_displaced += 1
        bucket = self._groups.setdefault(req.batch_key, {})
        lane = bucket.setdefault(req.tenant, [])
        lane.append(req)
        lane.sort(key=_lane_order)
        self._depth += 1
        self.n_admitted += 1
        self.peak_depth = max(self.peak_depth, self._depth)
        return displaced

    def _shed_oldest(self):
        oldest, where = None, None
        for key, bucket in self._groups.items():
            for tenant, lane in bucket.items():
                for req in lane:
                    stamp = (req.arrival_time, req.request_id)
                    if oldest is None or stamp < oldest:
                        oldest, where = stamp, (key, tenant, req)
        if where is None:
            return None
        key, tenant, req = where
        self._groups[key][tenant].remove(req)
        self._prune(key, tenant)
        self._depth -= 1
        return req

    # ------------------------------------------------------------------
    # extraction (the micro-batcher's side)
    # ------------------------------------------------------------------
    def take(self, key, k):
        """Up to ``k`` requests of group ``key``, in fair order.

        Round-robins across the group's tenants (cursor persists across
        calls, so a group repeatedly batched keeps rotating who goes
        first); each tenant contributes its own best request — highest
        priority, then earliest arrival — per turn.
        """
        bucket = self._groups.get(key)
        if not bucket:
            return []
        out = []
        tenants = sorted(bucket)
        start = self._cursor.get(key, 0) % len(tenants)
        tenants = tenants[start:] + tenants[:start]
        turns = 0
        while len(out) < int(k):
            progressed = False
            for tenant in tenants:
                lane = bucket.get(tenant)
                if not lane:
                    continue
                out.append(lane.pop(0))
                progressed = True
                turns += 1
                if len(out) >= int(k):
                    break
            if not progressed:
                break
        for tenant in list(bucket):
            self._prune(key, tenant)
        if key in self._groups:
            self._cursor[key] = (start + turns) % max(1, len(tenants))
        else:
            self._cursor.pop(key, None)
        self._depth -= len(out)
        return out

    def _prune(self, key, tenant):
        bucket = self._groups.get(key)
        if bucket is None:
            return
        if tenant in bucket and not bucket[tenant]:
            del bucket[tenant]
        if not bucket:
            del self._groups[key]

    # ------------------------------------------------------------------
    # group views (read-only, for batching policy)
    # ------------------------------------------------------------------
    def group_sizes(self):
        """``{batch_key: waiting count}`` over non-empty groups."""
        return {
            key: sum(len(lane) for lane in bucket.values())
            for key, bucket in self._groups.items()
        }

    def oldest_arrival(self, key):
        """Earliest ``arrival_time`` waiting in group ``key`` (inf if empty)."""
        bucket = self._groups.get(key, {})
        times = [req.arrival_time for lane in bucket.values() for req in lane]
        return min(times) if times else math.inf

    def min_deadline(self, key):
        """Tightest deadline waiting in group ``key`` (inf if empty)."""
        bucket = self._groups.get(key, {})
        deadlines = [req.deadline for lane in bucket.values() for req in lane]
        return min(deadlines) if deadlines else math.inf

    def __len__(self):
        return self._depth

    def __bool__(self):
        return self._depth > 0


def _lane_order(req):
    return (-req.priority, req.arrival_time, req.request_id)
