"""Worker shards and the deterministic solve-service core.

The service is a discrete-event simulation of a serving fleet with
*real numerics*: solutions, iteration counts and residuals come from
actually running the preconditioned solves (through the multi-RHS
level-batched kernels), while *time* is virtual — a
:class:`CostModel` charges each factorization and solve a
deterministic cost derived from the matrix structure and the work
performed, and a :class:`~repro.resilience.FaultPlan` perturbs those
charges (stragglers, spin faults, dropped completion publishes) without
ever touching the numbers.  The same seed therefore replays the same
run bit-for-bit, which is what the acceptance tests assert.

Shape of the core loop (:meth:`SolveService.run`):

1. advance the virtual clock to the next event — an arrival, a shard
   completion, or a batch-close time;
2. admit arrivals through the bounded
   :class:`~repro.serve.queue.AdmissionQueue` (displaced requests
   terminate immediately with a ``rejected`` outcome);
3. for each idle shard, close ready batches
   (:class:`~repro.serve.batcher.MicroBatcher`) for the groups that
   hash to it and execute them back-to-back.

Each :class:`WorkerShard` owns a private pattern-keyed
:class:`~repro.serve.factor_cache.FactorCache`: a warm hit is pure
solve work; a cold miss runs the
:class:`~repro.resilience.ResilientFactor` chain under the batch's
deadline budget, demoting the factorization tier (fill level, shift
attempts) when the budget is tight.

This module is the one place in ``serve/`` allowed to hold a lock
(JAV002): :meth:`SolveService.submit` may be called from other
threads, so the inbox hand-off is serialized; everything downstream of
:meth:`SolveService.run` is single-threaded and deterministic.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from ..core.javelin import JavelinOptions
from ..kernels.cache import cached_analysis, matrix_fingerprint, pattern_fingerprint
from ..obs import spans as _spans
from ..resilience import ResilientFactor, RetryPolicy
from ..sparse import spmv_csr
from .batcher import BatchPolicy, MicroBatcher
from .factor_cache import FactorCache, FactorEntry
from .queue import AdmissionQueue
from .request import RequestResult, SolveRequest
from .staleness import StalenessPolicy

__all__ = ["CostModel", "WorkerShard", "SolveService", "blocked_richardson", "SOLVERS"]

#: solvers the service accepts; only "richardson" is column-separable
#: (batchable) — the Krylov methods run per-request
SOLVERS = ("richardson", "gmres", "cg", "bicgstab")


@dataclass(frozen=True)
class CostModel:
    """Virtual-time charges for factor and solve work.

    Mirrors where the real implementation spends: a triangular sweep
    pays a fixed dispatch cost per level (``level_pass``) plus a
    per-entry cost per column (``entry_op``) — so the model, like the
    real kernels, rewards batching by amortizing the level term across
    a block's columns.  ``est_iters`` is the iteration guess used for
    deadline-pressure estimates before a solve has run.
    """

    factor_per_nnz: float = 4e-6
    #: value-only numeric refactor: no pattern analysis, no level-set
    #: construction, no schedule planning — the symbolic products are
    #: cache hits, so the charge is well under the cold rate
    refactor_per_nnz: float = 1.5e-6
    level_pass: float = 4e-6
    entry_op: float = 6e-9
    spmv_entry: float = 4e-9
    iteration_overhead: float = 2e-6
    batch_overhead: float = 2e-5
    est_iters: int = 25

    def factor_cost(self, nnz, fill_level=0):
        """Setup charge for one factorization at the given fill tier."""
        return self.factor_per_nnz * float(nnz) * (1.0 + float(fill_level))

    def refactor_cost(self, nnz, fill_level=0):
        """Charge for a value-only refactor of an already-analyzed pattern."""
        return self.refactor_per_nnz * float(nnz) * (1.0 + float(fill_level))

    def solve_cost(self, n_levels, nnz, passes, col_iters, sync_points=None):
        """Charge for one (possibly batched) iterative solve.

        ``passes`` iterations swept the levels once each (shared by
        every active column — the batching win); ``col_iters`` is the
        sum of per-column iteration counts (per-entry work scales with
        it).  ``sync_points`` overrides the per-pass synchronization
        count — the historical ``2 × n_levels`` of the level-set
        schedulers — so superstep/elastic/syncfree batches are priced
        by their actual sync economy (:func:`repro.sched.effective_sync_passes`).
        """
        if sync_points is None:
            sync_points = 2.0 * float(n_levels)
        per_pass = self.iteration_overhead + float(sync_points) * self.level_pass
        per_col_iter = float(nnz) * (2.0 * self.entry_op + self.spmv_entry)
        return self.batch_overhead + float(passes) * per_pass + float(col_iters) * per_col_iter

    def estimate_solve(self, n_levels, nnz, k):
        """A-priori estimate for deadline pressure (``est_iters`` guess)."""
        return self.solve_cost(n_levels, nnz, self.est_iters, self.est_iters * int(k))


# ----------------------------------------------------------------------
# batched numeric core
# ----------------------------------------------------------------------
def blocked_richardson(A, entry, B, tol, maxiter):
    """Preconditioned Richardson on a block of right-hand sides.

    ``x ← x + M⁻¹ (b - A x)`` per column, with the preconditioner
    applied to all active columns at once through ``entry.apply_multi``
    (the multi-RHS level-batched sweeps).  The iteration is
    column-separable — each column's float sequence is identical to a
    1-RHS run of the same code — so batching changes throughput, never
    results.  A converged column freezes (is dropped from the active
    set) exactly as its solo run would have stopped.

    Breakdown protocol: a non-finite preconditioner output on a column
    whose residual was finite means the factor itself is poisoned —
    every column sees it (the bad factor entries multiply all columns
    alike), so the entry's resilience chain advances once
    (``resetup``) and all unfinished columns restart from zero,
    exactly as each solo run would.  A column whose own residual went
    non-finite (overflow divergence) is marked broken alone.  A second
    poisoning marks the remaining columns broken — every request still
    terminates.
    """
    B = np.asarray(B, dtype=np.float64)
    n, k = B.shape
    X = np.zeros((n, k))
    iters = np.zeros(k, dtype=np.int64)
    resid = np.full(k, math.nan)
    converged = np.zeros(k, dtype=bool)
    broken = np.zeros(k, dtype=bool)
    bnorm = np.zeros(k)
    active = []
    for j in range(k):
        bn = float(np.linalg.norm(B[:, j]))
        bnorm[j] = bn
        if not math.isfinite(bn):
            broken[j] = True
        elif bn == 0.0:
            converged[j] = True
            resid[j] = 0.0
        else:
            active.append(j)
    R = B.copy()
    restarts_left = 1
    restarts = 0
    passes = 0
    col_iters = 0
    it = 0
    while active and it < maxiter:
        it += 1
        passes += 1
        col_iters += len(active)
        Z = entry.apply_multi(R[:, active])
        bad = [j for i, j in enumerate(active) if not np.all(np.isfinite(Z[:, i]))]
        if bad:
            poisoned = [j for j in bad if np.all(np.isfinite(R[:, j]))]
            if poisoned and restarts_left:
                # factor-global poisoning: demote the chain once and
                # restart every unfinished column from zero
                restarts_left -= 1
                restarts += 1
                entry.factor.resetup()
                entry.refresh_applies()
                for j in active:
                    X[:, j] = 0.0
                    R[:, j] = B[:, j]
                    iters[j] = 0
                it = 0
                continue
            for j in bad:
                broken[j] = True
                iters[j] = it
            keep = [i for i, j in enumerate(active) if j not in set(bad)]
            Z = Z[:, keep]
            active = [active[i] for i in keep]
            if not active:
                break
        X[:, active] += Z
        finished = set()
        for j in active:
            r = B[:, j] - spmv_csr(A, X[:, j])
            R[:, j] = r
            rel = float(np.linalg.norm(r)) / bnorm[j]
            iters[j] = it
            resid[j] = rel
            if not math.isfinite(rel):
                broken[j] = True
                finished.add(j)
            elif rel <= tol:
                converged[j] = True
                finished.add(j)
        if finished:
            active = [j for j in active if j not in finished]
    return {
        "X": X,
        "iterations": iters,
        "residual": resid,
        "converged": converged,
        "broken": broken,
        "restarts": restarts,
        "passes": passes,
        "col_iters": col_iters,
    }


# ----------------------------------------------------------------------
# shards
# ----------------------------------------------------------------------
class WorkerShard:
    """One serving shard: a factor cache plus a virtual busy clock."""

    def __init__(
        self,
        shard_id,
        *,
        cache_entries=8,
        cost: CostModel | None = None,
        options: JavelinOptions | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        staleness: StalenessPolicy | None = None,
    ):
        self.shard_id = int(shard_id)
        self.cache = FactorCache(cache_entries, name=f"shard{self.shard_id}")
        self.cost = cost or CostModel()
        self.options = options or JavelinOptions()
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_plan = fault_plan
        self.staleness = staleness or StalenessPolicy()
        # cold-build budget multiplier the tune controller may shrink:
        # bias < 1 makes tight-deadline cold misses demote sooner
        self.budget_bias = 1.0
        self.free_at = 0.0
        self.busy = False
        self.n_batches = 0
        self.n_cold = 0
        self.n_demotions = 0
        self.n_refactors = 0
        self.n_stale_steps = 0
        # matrix_key -> fingerprint the live cache entry is stored under.
        # Value-only updates move the *service's* fingerprint while the
        # entry stays put (stale policy) — pattern fingerprints cannot
        # index this lineage because distinct matrices legitimately
        # share a pattern.
        self._lineage: dict = {}

    # ------------------------------------------------------------------
    def _build_entry(self, A, fingerprint, budget):
        """Cold-miss factorization under a deadline budget.

        Picks the factorization tier the budget affords: the full
        requested options when there is headroom, a shift-limited run
        when tight, and a demoted ILU(0) with a single shift attempt
        when the budget cannot even cover the requested tier — a late
        preconditioner serves nobody, a cruder one might.
        """
        full = self.cost.factor_cost(A.nnz, self.options.fill_level)
        budget = budget * self.budget_bias
        opts, pol, demoted, charge = self.options, self.retry_policy, False, full
        if budget < full:
            opts = self.options.with_(fill_level=0, tau=0.0, modified=False)
            pol = self.retry_policy.with_(max_shift_attempts=1)
            demoted = True
            charge = self.cost.factor_cost(A.nnz, 0)
        elif budget < 2.0 * full:
            pol = self.retry_policy.with_(
                max_shift_attempts=min(2, self.retry_policy.max_shift_attempts)
            )
        rf = ResilientFactor(opts, pol).setup(A)
        if rf.ilu is not None:
            n_levels = int(cached_analysis(rf.ilu.F).plan("lower").n_levels)
            nnz = int(rf.ilu.F.nnz)
        else:
            n_levels, nnz = 1, int(A.nnz)
        entry = FactorEntry(
            fingerprint=fingerprint,
            factor=rf,
            apply_one=rf.build_solver(),
            apply_multi=rf.build_multi_solver(),
            variant=rf.report.final_variant,
            n_levels=n_levels,
            nnz=nnz,
            build_cost=charge,
            demoted=demoted,
            pattern_fp=pattern_fingerprint(A),
        )
        self.cache.put(entry)
        self.n_cold += 1
        if demoted:
            self.n_demotions += 1
        _spans.instant(
            "serve.factor",
            cat="serve",
            shard=self.shard_id,
            key=fingerprint[:12],
            variant=entry.variant,
            demoted=demoted,
        )
        return entry, charge

    # ------------------------------------------------------------------
    def invalidate(self, matrix_key):
        """Forget the live entry for ``matrix_key`` (pattern changed).

        The next batch cold-builds; the orphaned cache entry ages out
        of the LRU on its own.
        """
        self._lineage.pop(matrix_key, None)

    def _revalue_entry(self, entry, A, fingerprint, matrix_key):
        """Value-only refresh of a cached entry, in place.

        Runs the numeric phase on the cached symbolic products
        (:meth:`FactorEntry.revalue`), re-keys the cache slot to the new
        matrix fingerprint, and re-baselines the staleness iteration
        counter.  Charged at the refactor rate — the measurable win the
        apps bench gates on.
        """
        old_fp = entry.fingerprint
        entry.revalue(A, fingerprint)
        self.cache.rekey(old_fp, fingerprint)
        self._lineage[matrix_key] = fingerprint
        entry.base_iters = 0.0
        self.n_refactors += 1
        charge = self.cost.refactor_cost(entry.nnz)
        _spans.instant(
            "serve.refactor",
            cat="serve",
            shard=self.shard_id,
            key=fingerprint[:12],
            variant=entry.variant,
            refactors=entry.refactors,
        )
        return entry, charge

    # ------------------------------------------------------------------
    def _scheduler_sync_points(self, entry, scheduler):
        """Sync-point count of the batch's trisolve scheduler (cached).

        ``None``/``p2p``/``barrier`` keep the historical pricing
        (``2 × n_levels``, returned as ``None`` so ``solve_cost``'s
        default applies — the no-knob behavior is bit-identical).  The
        numeric applies are unchanged either way: every scheduler the
        service exposes runs in its exact mode, so only the charge
        moves.
        """
        if scheduler in (None, "p2p", "barrier"):
            return None
        sp = entry.sync_points.get(scheduler)
        if sp is None:
            rf = entry.factor
            if rf.ilu is None:
                sp = 2 * entry.n_levels
            else:
                from ..sched import effective_sync_passes

                sp = effective_sync_passes(rf.ilu.F, scheduler)
            entry.sync_points[scheduler] = sp
        return sp

    # ------------------------------------------------------------------
    def execute(self, batch, A, fingerprint, now, *, scheduler_override=None):
        """Run one batch starting at virtual time ``now``.

        Returns ``(results, finish_time)``; the shard is busy until
        ``finish_time``.  Faults scale or delay the virtual charges but
        never change the computed numbers.  ``scheduler_override``
        substitutes for an *unpinned* batch scheduler (the tune
        controller's per-pattern pick); a request that named its own
        scheduler keeps it.
        """
        reqs = batch.requests
        matrix_key, solver, tol, maxiter, scheduler = batch.key
        if scheduler is None:
            scheduler = scheduler_override
        budget = min(r.deadline for r in reqs) - now
        entry = self.cache.get(self._lineage.get(matrix_key, fingerprint))
        factor_charge = 0.0
        stale_this_batch = False
        if entry is None:
            entry, factor_charge = self._build_entry(A, fingerprint, budget)
            self._lineage[matrix_key] = fingerprint
        elif entry.fingerprint != fingerprint:
            # values drifted under a fixed pattern since this factor was
            # built — the staleness policy picks the response
            mode = self.staleness.mode
            if mode == "refactor" or (
                mode == "stale" and self.staleness.should_refactor(entry)
            ):
                entry, factor_charge = self._revalue_entry(
                    entry, A, fingerprint, matrix_key
                )
            elif mode == "cold":
                entry, factor_charge = self._build_entry(A, fingerprint, budget)
                self._lineage[matrix_key] = fingerprint
            else:
                stale_this_batch = True
        sync_points = self._scheduler_sync_points(entry, scheduler)
        if solver == "richardson":
            out = blocked_richardson(
                A, entry, np.stack([r.b for r in reqs], axis=1), tol, maxiter
            )
            solve_charge = self.cost.solve_cost(
                entry.n_levels, entry.nnz, out["passes"], out["col_iters"],
                sync_points=sync_points,
            )
        else:
            out = self._krylov(A, entry, reqs, solver, tol, maxiter)
            solve_charge = self.cost.solve_cost(
                entry.n_levels, entry.nnz, int(out["iterations"].sum()),
                int(out["iterations"].sum()),
                sync_points=sync_points,
            )
        service = factor_charge + solve_charge
        plan = self.fault_plan
        if plan is not None:
            service *= plan.rate(self.shard_id)
            service += sum(
                plan.spin_fault_penalty for r in reqs if r.request_id in plan.spin_faults
            )
        finish = now + service
        if plan is not None:
            # a lost completion publish is healed by the watchdog, one
            # timeout per dropped event — late, never lost
            n_dropped = sum(1 for r in reqs if plan.is_dropped(self.shard_id, r.request_id))
            finish += plan.watchdog_timeout * n_dropped
        # staleness bookkeeping: record this solve's quality on the
        # entry (the policy's degradation signal), and baseline a
        # freshly (re)built factor on its first solve
        mean_iters = float(np.mean(out["iterations"])) if len(reqs) else 0.0
        entry.last_iters = mean_iters
        entry.last_converged = bool(np.all(out["converged"]))
        if stale_this_batch:
            entry.stale_steps += 1
            self.n_stale_steps += 1
            _spans.instant(
                "serve.stale",
                cat="serve",
                shard=self.shard_id,
                key=fingerprint[:12],
                stale_steps=entry.stale_steps,
                mean_iters=mean_iters,
            )
        elif entry.base_iters == 0.0:
            entry.base_iters = mean_iters
        self.n_batches += 1
        _spans.instant(
            "serve.batch",
            cat="serve",
            shard=self.shard_id,
            size=len(reqs),
            solver=solver,
            cold=factor_charge > 0.0,
        )
        results = []
        for j, r in enumerate(reqs):
            if out["broken"][j]:
                outcome, detail = "breakdown", "non-finite solve even after demotion"
            elif finish > r.deadline:
                outcome, detail = "deadline_miss", ""
            else:
                outcome, detail = "served", ""
            results.append(
                RequestResult(
                    request_id=r.request_id,
                    outcome=outcome,
                    x=out["X"][:, j].copy(),
                    iterations=int(out["iterations"][j]),
                    residual=float(out["residual"][j]),
                    converged=bool(out["converged"][j]),
                    arrival_time=r.arrival_time,
                    start_time=now,
                    finish_time=finish,
                    shard=self.shard_id,
                    batch_size=len(reqs),
                    variant=entry.variant,
                    detail=detail,
                )
            )
        return results, finish

    def _krylov(self, A, entry, reqs, solver, tol, maxiter):
        """Per-request Krylov solves (non-batchable path)."""
        from ..solvers import bicgstab, cg, gmres

        run = {"gmres": gmres, "cg": cg, "bicgstab": bicgstab}[solver]
        k = len(reqs)
        n = A.n_rows
        X = np.zeros((n, k))
        iters = np.zeros(k, dtype=np.int64)
        resid = np.full(k, math.nan)
        converged = np.zeros(k, dtype=bool)
        broken = np.zeros(k, dtype=bool)
        for j, r in enumerate(reqs):
            res = run(A, r.b, M=entry.factor, tol=tol, maxiter=maxiter)
            X[:, j] = res.x
            iters[j] = res.iterations
            resid[j] = res.residual
            converged[j] = res.converged
            if not np.all(np.isfinite(res.x)) or (
                res.reason is not None and "breakdown" in res.reason.lower()
            ):
                broken[j] = True
        entry.refresh_applies()  # a guarded resetup may have advanced the chain
        return {
            "X": X,
            "iterations": iters,
            "residual": resid,
            "converged": converged,
            "broken": broken,
            "restarts": 0,
            "passes": int(iters.sum()),
            "col_iters": int(iters.sum()),
        }


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class SolveService:
    """Deterministic batched solve service over registered matrices."""

    def __init__(
        self,
        matrices,
        *,
        n_shards=2,
        capacity=64,
        admission="reject",
        batch_policy: BatchPolicy | None = None,
        cost: CostModel | None = None,
        options: JavelinOptions | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        factor_cache_entries=8,
        registry=None,
        staleness: StalenessPolicy | None = None,
        fairness="round_robin",
        controller=None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.matrices = dict(matrices)
        # value-aware digests: factors depend on the values, so two
        # matrices sharing a stencil must not share a cache slot
        self.fingerprints = {k: matrix_fingerprint(A) for k, A in self.matrices.items()}
        # structure-only digests decide whether an update_matrix() is a
        # value-only drift (revalue-eligible) or a new pattern
        self.pattern_fps = {k: pattern_fingerprint(A) for k, A in self.matrices.items()}
        # routing fingerprints are pinned at registration so value-only
        # updates keep a matrix on the shard that holds its factor
        self._route_fps = dict(self.fingerprints)
        self.capacity = int(capacity)
        self.admission = admission
        self.fairness = fairness
        self.staleness = staleness or StalenessPolicy()
        self.batch_policy = batch_policy or BatchPolicy()
        self.cost = cost or CostModel()
        self.registry = registry
        # duck-typed repro.tune controller (scheduler_override / observe
        # / batch_policy / staleness / budget_bias); None = untuned, the
        # default — serve never imports repro.tune
        self.controller = controller
        self.shards = [
            WorkerShard(
                i,
                cache_entries=factor_cache_entries,
                cost=self.cost,
                options=options,
                retry_policy=retry_policy,
                fault_plan=fault_plan,
                staleness=self.staleness,
            )
            for i in range(int(n_shards))
        ]
        self._inbox: list = []
        self._lock = threading.Lock()  # thread-safe submit(); run() is single-threaded

    # ------------------------------------------------------------------
    def submit(self, req: SolveRequest):
        """Enqueue a request for the next :meth:`run` (thread-safe)."""
        with self._lock:
            self._inbox.append(req)

    def drain_inbox(self):
        with self._lock:
            out, self._inbox = self._inbox, []
        return out

    def shard_of(self, matrix_key) -> int:
        """Shard affinity: a matrix key always lands on one shard.

        Routes on the fingerprint pinned at registration (or at the
        last pattern change), NOT the live value fingerprint — a
        value-only :meth:`update_matrix` must keep routing to the shard
        whose cache holds the factor being revalued.
        """
        return int(self._route_fps[matrix_key], 16) % len(self.shards)

    # ------------------------------------------------------------------
    def update_matrix(self, key, A_new):
        """Swap the values (or whole matrix) behind a registered key.

        Returns what downstream should expect:

        * ``"unchanged"`` — identical value fingerprint, no-op;
        * ``"values_changed"`` — same pattern, new values: the owning
          shard revalues / serves stale per its
          :class:`~repro.serve.staleness.StalenessPolicy`;
        * ``"pattern_changed"`` — structure moved: the old factor is
          invalidated and the next batch cold-builds (routing may move
          to a different shard).
        """
        if key not in self.matrices:
            raise KeyError(f"unknown matrix_key {key!r}")
        new_fp = matrix_fingerprint(A_new)
        if new_fp == self.fingerprints[key]:
            return "unchanged"
        new_pat = pattern_fingerprint(A_new)
        self.matrices[key] = A_new
        self.fingerprints[key] = new_fp
        if new_pat != self.pattern_fps[key]:
            self.pattern_fps[key] = new_pat
            self._route_fps[key] = new_fp
            for s in self.shards:
                s.invalidate(key)
            kind = "pattern_changed"
        else:
            kind = "values_changed"
        _spans.instant("serve.matrix_update", cat="serve", key=key, kind=kind)
        return kind

    def _est_cost(self, key, size):
        """Deadline-pressure estimate before anything has been factored."""
        A = self.matrices[key[0]]
        est_levels = max(1, int(A.n_rows**0.5))
        return self.cost.estimate_solve(est_levels, A.nnz, size)

    # ------------------------------------------------------------------
    def run(self, requests=None):
        """Serve a workload to completion; returns results by request id.

        ``requests`` defaults to the submitted inbox.  Every request
        terminates with a structured outcome; the run is a pure
        function of the inputs (virtual clock, seeded numerics), so the
        same workload replays identically.
        """
        reqs = list(requests) if requests is not None else self.drain_inbox()
        for r in reqs:
            if r.matrix_key not in self.matrices:
                raise KeyError(f"unknown matrix_key {r.matrix_key!r}")
            if r.solver not in SOLVERS:
                raise ValueError(f"unknown solver {r.solver!r}; supported: {SOLVERS}")
        reqs.sort(key=lambda r: (r.arrival_time, r.request_id))
        queue = AdmissionQueue(self.capacity, self.admission, self.fairness)
        ctl = self.controller
        batcher = MicroBatcher(ctl.batch_policy if ctl is not None else self.batch_policy)
        results: dict[int, RequestResult] = {}
        for s in self.shards:
            s.busy = False
            s.free_at = 0.0
        i = 0
        now = 0.0
        while i < len(reqs) or queue or any(s.busy for s in self.shards):
            cands = []
            if i < len(reqs):
                cands.append(reqs[i].arrival_time)
            for s in self.shards:
                if s.busy:
                    cands.append(s.free_at)
            idle_keys = {
                key
                for key in queue.group_sizes()
                if not self.shards[self.shard_of(key[0])].busy
            }
            if idle_keys:
                cands.append(batcher.next_close_time(queue, self._est_cost, keys=idle_keys))
            now = max(now, min(cands))
            for s in self.shards:
                if s.busy and s.free_at <= now:
                    s.busy = False
            while i < len(reqs) and reqs[i].arrival_time <= now:
                req = reqs[i]
                i += 1
                for victim in queue.push(req):
                    results[victim.request_id] = RequestResult(
                        request_id=victim.request_id,
                        outcome="rejected",
                        arrival_time=victim.arrival_time,
                        start_time=now,
                        finish_time=now,
                        detail=f"queue full (capacity {self.capacity}, "
                        f"policy {self.admission})",
                    )
                    _spans.instant(
                        "serve.reject", cat="serve", request_id=victim.request_id
                    )
            for s in self.shards:
                if s.busy:
                    continue
                keys_for_s = {
                    key
                    for key in queue.group_sizes()
                    if self.shard_of(key[0]) == s.shard_id
                }
                if not keys_for_s:
                    continue
                batches = batcher.pop_ready(queue, now, self._est_cost, keys=keys_for_s)
                start = now
                for batch in batches:
                    A = self.matrices[batch.matrix_key]
                    override = (
                        ctl.scheduler_override(A) if ctl is not None else None
                    )
                    batch_results, finish = s.execute(
                        batch,
                        A,
                        self.fingerprints[batch.matrix_key],
                        start,
                        scheduler_override=override,
                    )
                    for res in batch_results:
                        results[res.request_id] = res
                    start = finish
                    if ctl is not None:
                        ctl.observe(
                            batch_results, queue_depth=len(queue), now=finish
                        )
                if batches:
                    s.busy = True
                    s.free_at = start
            if ctl is not None:
                # re-read the knobs the controller may have moved; all
                # of them select among bit-identical paths only
                batcher.policy = ctl.batch_policy
                for sh in self.shards:
                    sh.staleness = ctl.staleness
                    sh.budget_bias = ctl.budget_bias
        ordered = [results[r.request_id] for r in sorted(reqs, key=lambda r: r.request_id)]
        self._record_metrics(ordered, queue, batcher)
        return ordered

    # ------------------------------------------------------------------
    def _record_metrics(self, results, queue, batcher):
        reg = self.registry
        if reg is None:
            return
        from .request import OUTCOMES

        reg.counter("serve.requests").inc(len(results))
        for outcome in OUTCOMES:
            n = sum(1 for r in results if r.outcome == outcome)
            if n:
                reg.counter(f"serve.{outcome}").inc(n)
        reg.counter("serve.batches").inc(batcher.n_batches)
        reg.counter("serve.demotions").inc(sum(s.n_demotions for s in self.shards))
        reg.counter("serve.refactors").inc(sum(s.n_refactors for s in self.shards))
        reg.counter("serve.stale_steps").inc(sum(s.n_stale_steps for s in self.shards))
        reg.gauge("serve.queue_depth_peak").set(queue.peak_depth)
        finished = [r for r in results if r.outcome != "rejected"]
        if finished:
            reg.histogram("serve.latency").observe_many(r.latency for r in finished)
            reg.histogram("serve.wait_time").observe_many(r.wait_time for r in finished)
            reg.histogram("serve.batch_size").observe_many(r.batch_size for r in finished)
        from ..obs.metrics import record_factor_cache_metrics

        record_factor_cache_metrics(
            reg, [s.cache for s in self.shards], prefix="serve.factor_cache"
        )
        if self.controller is not None:
            for name, value in self.controller.metrics().items():
                reg.counter(name).inc(int(value))
