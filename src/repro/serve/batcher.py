"""Micro-batching: coalesce compatible requests into multi-RHS solves.

The Javelin premise is that setup is amortized across many triangular
solves; the batcher amortizes the *per-solve* overhead too.  Requests
whose :attr:`~repro.serve.request.SolveRequest.batch_key` matches —
same matrix, solver, tolerance, iteration cap — are gathered into one
``(n, k)`` right-hand-side block and swept through the multi-RHS
trisolve kernels (``repro/kernels/trisolve.py``), which pay the
per-level dispatch cost once per level instead of once per level per
request.  Each batched column is bit-identical to the request served
alone, so batching is purely a scheduling decision.

A waiting group closes into a batch when **any** of:

* **max-size** — ``max_batch`` requests are waiting (a full block);
* **max-wait** — the oldest waiting request has aged ``max_wait``
  (bounds the latency cost of fishing for batch-mates);
* **SLA wait** — a waiting request of a class named in
  :attr:`BatchPolicy.sla_waits` has aged its class budget (interactive
  traffic stops fishing for batch-mates sooner than the global cap);
* **deadline pressure** — the group's tightest deadline leaves only
  enough slack to run the batch now (``min_deadline - now ≤
  est_cost + deadline_slack``);
* the solver is not in ``batchable`` — those dispatch immediately as
  singleton batches (a Krylov solve with its own state machine gains
  nothing from column stacking here).

The batcher owns *policy only*: requests stay in the
:class:`~repro.serve.queue.AdmissionQueue` (where backpressure and
fairness are enforced) until the moment a batch closes, at which point
they are extracted in the queue's fair order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["BatchPolicy", "Batch", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of batch formation.

    ``max_batch`` is the multi-RHS block width cap; ``max_wait`` the
    longest a request may age waiting for batch-mates (virtual time);
    ``deadline_slack`` extra margin subtracted from a group's deadline
    budget before pressure-closing; ``batchable`` the solvers whose
    column-separable iterations may share a block.

    ``sla_waits`` is the SLA-aware close rule: ``(sla_class, budget)``
    pairs that cap how long a waiting request of that class may age
    before its group closes — an ``interactive`` request in a forming
    batch *tightens* the close deadline to its SLA budget instead of
    only ordering extraction via EDF.  Classes absent from the group
    have no effect.
    """

    max_batch: int = 16
    max_wait: float = 0.01
    deadline_slack: float = 0.0
    batchable: tuple = ("richardson",)
    sla_waits: tuple = ()

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0.0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        for item in self.sla_waits:
            cls, budget = item
            if budget < 0.0:
                raise ValueError(
                    f"sla_waits budget must be >= 0, got {budget} for {cls!r}"
                )


@dataclass(eq=False)
class Batch:
    """A closed batch: one multi-RHS solve about to run on a shard."""

    key: tuple
    requests: list = field(default_factory=list)
    formed_at: float = 0.0

    @property
    def size(self):
        return len(self.requests)

    @property
    def matrix_key(self):
        return self.key[0]

    @property
    def solver(self):
        return self.key[1]


class MicroBatcher:
    """Batch-closing policy over the admission queue's group views."""

    def __init__(self, policy: BatchPolicy | None = None):
        self.policy = policy or BatchPolicy()
        self.n_batches = 0

    # ------------------------------------------------------------------
    def _close_time(self, queue, key, size, est_cost):
        """When group ``key`` becomes ready (may be in the past)."""
        pol = self.policy
        solver = key[1]
        if solver not in pol.batchable or size >= pol.max_batch:
            return queue.oldest_arrival(key)  # ready since its oldest arrival
        t_wait = queue.oldest_arrival(key) + pol.max_wait
        for cls, budget in pol.sla_waits:
            t0 = queue.oldest_arrival_sla(key, cls)
            if math.isfinite(t0):
                t_wait = min(t_wait, t0 + budget)
        deadline = queue.min_deadline(key)
        if math.isfinite(deadline):
            t_pressure = deadline - est_cost(key, size) - pol.deadline_slack
            return min(t_wait, t_pressure)
        return t_wait

    def next_close_time(self, queue, est_cost, *, keys=None):
        """Earliest readiness over (a subset of) waiting groups, or inf."""
        sizes = queue.group_sizes()
        times = [
            self._close_time(queue, key, size, est_cost)
            for key, size in sizes.items()
            if keys is None or key in keys
        ]
        return min(times) if times else math.inf

    def pop_ready(self, queue, now, est_cost, *, keys=None):
        """Extract every group ready at ``now`` as closed batches.

        Groups larger than ``max_batch`` close repeatedly until the
        remainder is no longer ready (its own clock restarts from its
        oldest surviving request).  Extraction order is deterministic:
        groups sorted by (readiness time, key).
        """
        ready = []
        sizes = queue.group_sizes()
        for key, size in sizes.items():
            if keys is not None and key not in keys:
                continue
            t = self._close_time(queue, key, size, est_cost)
            if t <= now:
                ready.append((t, key))
        batches = []
        for _, key in sorted(ready, key=lambda item: (item[0], repr(item[1]))):
            while True:
                sizes = queue.group_sizes()
                size = sizes.get(key, 0)
                if size == 0 or self._close_time(queue, key, size, est_cost) > now:
                    break
                # non-batchable solvers dispatch as singletons: ready at
                # once, but never sharing a block
                cap = self.policy.max_batch if key[1] in self.policy.batchable else 1
                take = min(size, cap)
                requests = queue.take(key, take)
                if not requests:
                    break
                self.n_batches += 1
                batches.append(Batch(key=key, requests=requests, formed_at=now))
        return batches
