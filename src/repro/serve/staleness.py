"""Factor-staleness policy: when do changed values force a refactor?

Time-evolving workloads (Newton loops, implicit time-steppers — the
:mod:`repro.apps` drivers) update a registered matrix's *values* while
its pattern stays fixed.  The preconditioner in the factor cache was
built from older values; three responses exist, ordered by cost:

* ``"cold"`` — rebuild from scratch on every value change.  Pays the
  full symbolic + numeric setup each step; the baseline the paper's
  setup-amortization argument is against.
* ``"refactor"`` — value-only numeric refactor on every change
  (:meth:`repro.resilience.ResilientFactor.refactor`).  Symbolic
  products are reused, the factor always matches the current values.
* ``"stale"`` — keep applying the *old* factor to the new system until
  per-step iteration counts degrade past a threshold, then refactor.
  An ILU preconditioner of nearby values is still an excellent
  preconditioner — iteration drift, not wall-clock, is the honest
  staleness signal.  Degradation means: the last solve failed to
  converge, or its mean iteration count exceeded
  ``max(base_iters * degrade_factor, base_iters + degrade_margin)``
  where ``base_iters`` was measured right after the factor was (re)built.

The policy object is deliberately tiny and deterministic — it reads
only counters the shard records on the cache entry, so a replayed
workload makes identical refactor decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["STALENESS_MODES", "StalenessPolicy"]

STALENESS_MODES = ("cold", "refactor", "stale")


@dataclass(frozen=True)
class StalenessPolicy:
    """Decide whether a value-drifted factor entry must be refreshed."""

    mode: str = "refactor"
    #: relative iteration-growth trigger (1.5 = 50% more iterations)
    degrade_factor: float = 1.5
    #: absolute slack on top of the baseline, for small baselines where
    #: a ratio alone would trigger on +1 iteration of noise
    degrade_margin: int = 4

    def __post_init__(self):
        if self.mode not in STALENESS_MODES:
            raise ValueError(f"mode must be one of {STALENESS_MODES}, got {self.mode!r}")
        if self.degrade_factor < 1.0:
            raise ValueError(f"degrade_factor must be >= 1.0, got {self.degrade_factor}")
        if self.degrade_margin < 0:
            raise ValueError(f"degrade_margin must be >= 0, got {self.degrade_margin}")

    def should_refactor(self, entry) -> bool:
        """Has ``entry``'s solve quality degraded past the threshold?

        Only meaningful in ``"stale"`` mode ("cold"/"refactor" never
        serve a drifted factor).  With no baseline recorded yet the
        entry is kept — the first drifted solve establishes the drift
        curve the apps bench plots.
        """
        if not entry.last_converged:
            return True
        if entry.base_iters <= 0.0:
            return False
        threshold = max(
            entry.base_iters * self.degrade_factor,
            entry.base_iters + float(self.degrade_margin),
        )
        return entry.last_iters > threshold
