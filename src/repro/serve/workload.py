"""Seeded open-loop workload generation and result summarization.

An *open-loop* generator: arrivals follow a Poisson process at a fixed
rate, independent of how fast the service drains them — so overload
actually overloads, and the admission queue's backpressure is
exercised rather than hidden by a closed feedback loop.  Everything is
drawn from one seeded generator, making a workload (and hence a whole
service run, whose clock is virtual) a pure function of its
:class:`WorkloadSpec`.

The request mix mirrors what an ILU serving tier sees in practice:

* **pattern popularity is skewed** — matrix keys are drawn from a
  Zipf-like distribution (``p(rank) ∝ rank^-zipf_s``), so a few hot
  patterns dominate (warm factor-cache hits) with a long cold tail;
* **right-hand sides drift** — each pattern's RHS stream is an AR(1)
  walk (:func:`repro.matrices.rhs_stream`), correlated like successive
  timesteps of a simulation, never exactly repeated;
* **tenants, priorities, deadlines, solvers** are drawn independently
  per request.

Matrix keys are strings like ``"grid2d-24"`` or ``"scircuit-0.4"``,
parsed by :func:`build_matrices` against the generator registry in
:mod:`repro.matrices`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..matrices import circuit_network, grid2d, rhs_stream
from .request import SolveRequest

__all__ = ["WorkloadSpec", "build_matrices", "generate_requests", "summarize"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible workload: seed plus the distribution knobs."""

    seed: int = 0
    n_requests: int = 200
    rate: float = 400.0  # mean arrivals per unit of virtual time
    n_tenants: int = 4
    patterns: tuple = ("grid2d-16", "grid2d-24", "grid2d-32")
    zipf_s: float = 1.1
    deadline_lo: float = 0.05
    deadline_hi: float = 0.5
    solvers: tuple = ("richardson",)
    solver_weights: tuple = (1.0,)
    tol: float = 1e-8
    maxiter: int = 200
    drift: float = 0.1
    scheduler: str | None = None  # trisolve scheduler for every request

    def __post_init__(self):
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.rate <= 0.0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if not self.patterns:
            raise ValueError("patterns must be non-empty")
        if len(self.solvers) != len(self.solver_weights):
            raise ValueError("solvers and solver_weights must have equal length")


def build_matrices(patterns):
    """Instantiate ``{key: CSRMatrix}`` from ``"name-param"`` keys.

    ``grid2d-N`` → ``grid2d(N)``; ``convect2d-N`` → ``grid2d(N,
    convection=1.0)`` (nonsymmetric); ``circuit-N`` →
    ``circuit_network(N)``.  Seeds are fixed so a key always denotes
    the same matrix.
    """
    out = {}
    for key in patterns:
        name, _, param = key.partition("-")
        if name == "grid2d":
            out[key] = grid2d(int(param))
        elif name == "convect2d":
            out[key] = grid2d(int(param), convection=1.0)
        elif name == "circuit":
            out[key] = circuit_network(int(param), seed=7)
        else:
            raise ValueError(
                f"unknown pattern key {key!r}; expected grid2d-N, convect2d-N "
                f"or circuit-N"
            )
    return out


def generate_requests(spec: WorkloadSpec, matrices):
    """The workload as a list of :class:`SolveRequest`, sorted by arrival."""
    rng = np.random.default_rng(spec.seed)
    ranks = np.arange(1, len(spec.patterns) + 1, dtype=np.float64)
    p_pattern = ranks ** (-spec.zipf_s)
    p_pattern /= p_pattern.sum()
    w = np.asarray(spec.solver_weights, dtype=np.float64)
    p_solver = w / w.sum()
    streams = {
        key: rhs_stream(matrices[key].n_rows, drift=spec.drift, seed=spec.seed + i)
        for i, key in enumerate(spec.patterns)
    }
    reqs = []
    now = 0.0
    for rid in range(spec.n_requests):
        now += float(rng.exponential(1.0 / spec.rate))
        key = spec.patterns[int(rng.choice(len(spec.patterns), p=p_pattern))]
        solver = spec.solvers[int(rng.choice(len(spec.solvers), p=p_solver))]
        reqs.append(
            SolveRequest(
                request_id=rid,
                tenant=f"tenant{int(rng.integers(spec.n_tenants))}",
                matrix_key=key,
                b=next(streams[key]),
                solver=solver,
                tol=spec.tol,
                deadline=now + float(rng.uniform(spec.deadline_lo, spec.deadline_hi)),
                priority=int(rng.integers(3)),
                arrival_time=now,
                maxiter=spec.maxiter,
                scheduler=spec.scheduler,
            )
        )
    return reqs


def summarize(results):
    """Aggregate a run's results into the bench/report scalar summary."""
    n = len(results)
    by_outcome = {}
    for r in results:
        by_outcome[r.outcome] = by_outcome.get(r.outcome, 0) + 1
    finished = [r for r in results if r.outcome != "rejected"]
    latencies = sorted(r.latency for r in finished)

    def pct(q):
        if not latencies:
            return math.nan
        return latencies[min(len(latencies) - 1, int(math.ceil(q * len(latencies))) - 1)]

    makespan = max((r.finish_time for r in finished), default=0.0)
    served = by_outcome.get("served", 0)
    return {
        "n_requests": n,
        "outcomes": by_outcome,
        "served_fraction": served / n if n else math.nan,
        "deadline_miss_rate": by_outcome.get("deadline_miss", 0) / n if n else math.nan,
        "reject_rate": by_outcome.get("rejected", 0) / n if n else math.nan,
        "p50_latency": pct(0.50),
        "p99_latency": pct(0.99),
        "mean_batch_size": (
            float(np.mean([r.batch_size for r in finished])) if finished else math.nan
        ),
        "makespan": makespan,
        "throughput": (len(finished) / makespan) if makespan > 0 else math.nan,
    }
