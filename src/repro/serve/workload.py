"""Seeded open-loop workload generation and result summarization.

An *open-loop* generator: arrivals follow a Poisson process at a fixed
rate, independent of how fast the service drains them — so overload
actually overloads, and the admission queue's backpressure is
exercised rather than hidden by a closed feedback loop.  Everything is
drawn from one seeded generator, making a workload (and hence a whole
service run, whose clock is virtual) a pure function of its
:class:`WorkloadSpec`.

The request mix mirrors what an ILU serving tier sees in practice:

* **pattern popularity is skewed** — matrix keys are drawn from a
  Zipf-like distribution (``p(rank) ∝ rank^-zipf_s``), so a few hot
  patterns dominate (warm factor-cache hits) with a long cold tail;
* **right-hand sides drift** — each pattern's RHS stream is an AR(1)
  walk (:func:`repro.matrices.rhs_stream`), correlated like successive
  timesteps of a simulation, never exactly repeated;
* **tenants, priorities, deadlines, solvers** are drawn independently
  per request.

Matrix keys are strings like ``"grid2d-24"`` or ``"scircuit-0.4"``,
parsed by :func:`build_matrices` against the generator registry in
:mod:`repro.matrices`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..matrices import circuit_network, grid2d, rhs_stream
from .request import SolveRequest

__all__ = [
    "WORKLOAD_SHAPES",
    "WorkloadSpec",
    "arrival_rate",
    "build_matrices",
    "generate_requests",
    "summarize",
]

#: arrival/mix shapes a :class:`WorkloadSpec` can take.  ``poisson`` is
#: the historical constant-rate stream (draw-for-draw identical to the
#: pre-shape generator); the others stress the serving tier's weak
#: spots: ``diurnal`` (sinusoidal rate curve — sustained swing between
#: quiet and rush hours), ``flash_crowd`` (a rate spike of
#: ``flash_factor``× during a window — queue/backpressure stress), and
#: ``hot_key_storm`` (pattern mix collapses onto one hot key during a
#: window — replication and cache-placement stress), and
#: ``multi_region`` (``n_regions`` regions, each with its own zipf skew
#: — the hot pattern differs per region — and a phase-shifted diurnal
#: arrival curve, so "rush hour" rolls around the regions).
WORKLOAD_SHAPES = ("poisson", "diurnal", "flash_crowd", "hot_key_storm", "multi_region")


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible workload: seed plus the distribution knobs."""

    seed: int = 0
    n_requests: int = 200
    rate: float = 400.0  # mean arrivals per unit of virtual time
    n_tenants: int = 4
    patterns: tuple = ("grid2d-16", "grid2d-24", "grid2d-32")
    zipf_s: float = 1.1
    deadline_lo: float = 0.05
    deadline_hi: float = 0.5
    solvers: tuple = ("richardson",)
    solver_weights: tuple = (1.0,)
    tol: float = 1e-8
    maxiter: int = 200
    drift: float = 0.1
    scheduler: str | None = None  # trisolve scheduler for every request
    #: arrival/mix shape (one of :data:`WORKLOAD_SHAPES`) and its knobs
    shape: str = "poisson"
    diurnal_period: float = 0.5  # one full day on the virtual clock
    diurnal_amplitude: float = 0.8  # rate swings rate·(1 ± amplitude)
    burst_at: float = 0.1  # flash-crowd / storm window start (virtual time)
    burst_duration: float = 0.1
    flash_factor: float = 6.0  # rate multiplier inside the flash window
    storm_intensity: float = 0.95  # P(hot key) inside the storm window
    storm_rank: int = 0  # which pattern (by zipf rank) the storm hammers
    #: multi_region knobs: each region's zipf ranking is rotated by its
    #: index (region r's hottest pattern is ``patterns[r % len]``) and
    #: its diurnal phase shifted by ``r / n_regions`` of a period
    n_regions: int = 3
    region_weights: tuple = ()  # per-region traffic share; () = equal
    #: optional SLA-class mix, ``((class, weight), ...)``; () keeps the
    #: historical draw sequence (every request "standard")
    sla_weights: tuple = ()

    def __post_init__(self):
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.rate <= 0.0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if not self.patterns:
            raise ValueError("patterns must be non-empty")
        if len(self.solvers) != len(self.solver_weights):
            raise ValueError("solvers and solver_weights must have equal length")
        if self.shape not in WORKLOAD_SHAPES:
            raise ValueError(
                f"shape must be one of {WORKLOAD_SHAPES}, got {self.shape!r}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.diurnal_period <= 0.0:
            raise ValueError(f"diurnal_period must be positive, got {self.diurnal_period}")
        if self.flash_factor < 1.0:
            raise ValueError(f"flash_factor must be >= 1, got {self.flash_factor}")
        if not 0.0 <= self.storm_intensity <= 1.0:
            raise ValueError(
                f"storm_intensity must be in [0, 1], got {self.storm_intensity}"
            )
        if not 0 <= self.storm_rank < len(self.patterns):
            raise ValueError(
                f"storm_rank must index patterns (0..{len(self.patterns) - 1}), "
                f"got {self.storm_rank}"
            )
        if self.n_regions < 1:
            raise ValueError(f"n_regions must be >= 1, got {self.n_regions}")
        if self.region_weights and len(self.region_weights) != self.n_regions:
            raise ValueError(
                f"region_weights must have n_regions={self.n_regions} entries, "
                f"got {len(self.region_weights)}"
            )
        if any(w <= 0.0 for w in self.region_weights):
            raise ValueError("region_weights must be positive")
        from .request import SLA_CLASSES

        for cls, w in self.sla_weights:
            if cls not in SLA_CLASSES:
                raise ValueError(
                    f"sla_weights class must be one of {SLA_CLASSES}, got {cls!r}"
                )
            if w <= 0.0:
                raise ValueError(f"sla_weights weight must be positive, got {w}")


def build_matrices(patterns):
    """Instantiate ``{key: CSRMatrix}`` from ``"name-param"`` keys.

    ``grid2d-N`` → ``grid2d(N)``; ``convect2d-N`` → ``grid2d(N,
    convection=1.0)`` (nonsymmetric); ``circuit-N`` →
    ``circuit_network(N)``.  Seeds are fixed so a key always denotes
    the same matrix.
    """
    out = {}
    for key in patterns:
        name, _, param = key.partition("-")
        if name == "grid2d":
            out[key] = grid2d(int(param))
        elif name == "convect2d":
            out[key] = grid2d(int(param), convection=1.0)
        elif name == "circuit":
            out[key] = circuit_network(int(param), seed=7)
        else:
            raise ValueError(
                f"unknown pattern key {key!r}; expected grid2d-N, convect2d-N "
                f"or circuit-N"
            )
    return out


def _region_shares(spec: WorkloadSpec):
    """Normalized per-region traffic shares (equal when unspecified)."""
    if spec.region_weights:
        w = np.asarray(spec.region_weights, dtype=np.float64)
    else:
        w = np.ones(spec.n_regions)
    return w / w.sum()


def _region_rates(spec: WorkloadSpec, t: float):
    """Per-region instantaneous rates: phase-shifted diurnal curves.

    Region ``r`` peaks ``r / n_regions`` of a period after region 0 —
    rush hour rolls around the globe instead of hitting everywhere at
    once.
    """
    shares = _region_shares(spec)
    rates = []
    for r in range(spec.n_regions):
        phase = 2.0 * math.pi * (t / spec.diurnal_period - r / spec.n_regions)
        rates.append(
            float(shares[r])
            * spec.rate
            * (1.0 + spec.diurnal_amplitude * math.sin(phase))
        )
    return rates


def arrival_rate(spec: WorkloadSpec, t: float) -> float:
    """Instantaneous arrival rate λ(t) of the spec's shape at time ``t``."""
    if spec.shape == "diurnal":
        phase = 2.0 * math.pi * t / spec.diurnal_period
        return spec.rate * (1.0 + spec.diurnal_amplitude * math.sin(phase))
    if spec.shape == "flash_crowd":
        in_burst = spec.burst_at <= t < spec.burst_at + spec.burst_duration
        return spec.rate * (spec.flash_factor if in_burst else 1.0)
    if spec.shape == "multi_region":
        return sum(_region_rates(spec, t))
    return spec.rate  # poisson and hot_key_storm arrive at constant rate


def _peak_rate(spec: WorkloadSpec) -> float:
    """An upper bound on λ(t), the thinning envelope."""
    if spec.shape in ("diurnal", "multi_region"):
        # multi_region: shares sum to 1, so the total is bounded by the
        # all-regions-at-peak envelope even though phases never align
        return spec.rate * (1.0 + spec.diurnal_amplitude)
    if spec.shape == "flash_crowd":
        return spec.rate * spec.flash_factor
    return spec.rate


def _next_arrival(spec, rng, now):
    """One inter-arrival step of the (possibly inhomogeneous) process.

    Constant-rate shapes draw one exponential gap; time-varying shapes
    use Lewis–Shedler thinning against the peak-rate envelope — still a
    pure function of the seeded generator's draw sequence.
    """
    peak = _peak_rate(spec)
    if spec.shape in ("poisson", "hot_key_storm"):
        return now + float(rng.exponential(1.0 / peak))
    while True:
        now += float(rng.exponential(1.0 / peak))
        if float(rng.random()) * peak <= arrival_rate(spec, now):
            return now


def generate_requests(spec: WorkloadSpec, matrices):
    """The workload as a list of :class:`SolveRequest`, sorted by arrival.

    For the default ``poisson`` shape the draw sequence is identical to
    the historical generator, so existing seeded workloads replay
    unchanged; the other :data:`WORKLOAD_SHAPES` reinterpret the same
    seeded stream as an inhomogeneous arrival process or a skewed
    pattern mix.
    """
    rng = np.random.default_rng(spec.seed)
    ranks = np.arange(1, len(spec.patterns) + 1, dtype=np.float64)
    p_pattern = ranks ** (-spec.zipf_s)
    p_pattern /= p_pattern.sum()
    w = np.asarray(spec.solver_weights, dtype=np.float64)
    p_solver = w / w.sum()
    streams = {
        key: rhs_stream(matrices[key].n_rows, drift=spec.drift, seed=spec.seed + i)
        for i, key in enumerate(spec.patterns)
    }
    reqs = []
    now = 0.0
    if spec.sla_weights:
        sla_classes = tuple(cls for cls, _ in spec.sla_weights)
        sw = np.asarray([w for _, w in spec.sla_weights], dtype=np.float64)
        p_sla = sw / sw.sum()
    for rid in range(spec.n_requests):
        now = _next_arrival(spec, rng, now)
        region = None
        if spec.shape == "multi_region":
            # attribute the arrival to a region ∝ its instantaneous
            # rate (one uniform draw), so regional mix follows the
            # rolling rush hour
            rates = _region_rates(spec, now)
            u = float(rng.random()) * sum(rates)
            region, acc = spec.n_regions - 1, 0.0
            for ri, rr in enumerate(rates):
                acc += rr
                if u <= acc:
                    region = ri
                    break
        rank = int(rng.choice(len(spec.patterns), p=p_pattern))
        if region is not None:
            # per-region zipf skew: rotate the ranking so each region's
            # hottest pattern is a different key
            rank = (rank + region) % len(spec.patterns)
        key = spec.patterns[rank]
        if (
            spec.shape == "hot_key_storm"
            and spec.burst_at <= now < spec.burst_at + spec.burst_duration
            and float(rng.random()) < spec.storm_intensity
        ):
            key = spec.patterns[spec.storm_rank]  # the storm's hot key
        solver = spec.solvers[int(rng.choice(len(spec.solvers), p=p_solver))]
        tenant = f"tenant{int(rng.integers(spec.n_tenants))}"
        if region is not None:
            tenant = f"r{region}-{tenant}"
        sla = "standard"
        if spec.sla_weights:
            sla = sla_classes[int(rng.choice(len(sla_classes), p=p_sla))]
        reqs.append(
            SolveRequest(
                request_id=rid,
                tenant=tenant,
                matrix_key=key,
                b=next(streams[key]),
                solver=solver,
                tol=spec.tol,
                deadline=now + float(rng.uniform(spec.deadline_lo, spec.deadline_hi)),
                priority=int(rng.integers(3)),
                arrival_time=now,
                maxiter=spec.maxiter,
                scheduler=spec.scheduler,
                sla=sla,
            )
        )
    return reqs


def summarize(results):
    """Aggregate a run's results into the bench/report scalar summary."""
    n = len(results)
    by_outcome = {}
    for r in results:
        by_outcome[r.outcome] = by_outcome.get(r.outcome, 0) + 1
    finished = [r for r in results if r.outcome != "rejected"]
    latencies = sorted(r.latency for r in finished)

    def pct(q):
        if not latencies:
            return math.nan
        return latencies[min(len(latencies) - 1, int(math.ceil(q * len(latencies))) - 1)]

    makespan = max((r.finish_time for r in finished), default=0.0)
    served = by_outcome.get("served", 0)
    return {
        "n_requests": n,
        "outcomes": by_outcome,
        "served_fraction": served / n if n else math.nan,
        "deadline_miss_rate": by_outcome.get("deadline_miss", 0) / n if n else math.nan,
        "reject_rate": by_outcome.get("rejected", 0) / n if n else math.nan,
        "p50_latency": pct(0.50),
        "p99_latency": pct(0.99),
        "mean_batch_size": (
            float(np.mean([r.batch_size for r in finished])) if finished else math.nan
        ),
        "makespan": makespan,
        # throughput counts everything that *ran* (including deadline
        # misses and breakdowns — work was done); goodput counts only
        # requests that terminated ``served``.  Gates that mean "useful
        # work per unit time" must read goodput.
        "throughput": (len(finished) / makespan) if makespan > 0 else math.nan,
        "goodput": (served / makespan) if makespan > 0 else math.nan,
    }
