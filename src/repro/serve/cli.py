"""``repro serve`` — benchmark and gate the batched solve service.

::

    python -m repro serve bench                 # full run, writes BENCH_serve.json
    python -m repro serve bench --check         # fast CI gate (small workload)
    python -m repro serve bench --out path.json

The bench exercises every acceptance property of the serving layer and
records the evidence in one JSON file:

* **workload** — a seeded open-loop run (Zipf pattern mix, drifting
  RHS streams, mixed tenants/priorities/deadlines): throughput,
  p50/p99 latency, deadline-miss and reject rates, mean batch width;
* **replay** — the same spec run twice must produce identical outcome
  sequences and bit-identical solutions (the core is deterministic);
* **batch_identity** — the workload served with batching on versus
  ``max_batch=1`` must give bit-identical solutions per request
  (batching is a scheduling decision, never a numerical one);
* **speedup** — wall-clock throughput of the warm-cache multi-RHS
  solve versus serving the same columns one at a time, at widths
  8/16/32 (gate: ≥ 3× at some width ≥ 8);
* **faults** — a seeded :class:`~repro.resilience.FaultPlan`
  (straggler shard, spin faults, dropped completions) under tight
  deadlines: every request must still terminate in a structured
  outcome, and the faulted run must replay deterministically too.

``--check`` shrinks the workload and skips the wall-clock timing (it
is the one non-deterministic measurement) but still enforces replay,
batch identity and fault termination — the properties CI can assert
exactly.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math

import numpy as np

from ..matrices import grid2d
from ..obs.metrics import MetricsRegistry, validate_metrics
from ..resilience import FaultPlan, ResilientFactor
from ..verify.conservation import check_conservation
from ..sched.options import SCHEDULER_NAMES
from .batcher import BatchPolicy
from .request import OUTCOMES
from .workers import CostModel, SolveService, blocked_richardson
from .workload import (
    WORKLOAD_SHAPES,
    WorkloadSpec,
    build_matrices,
    generate_requests,
    summarize,
)

__all__ = ["main", "build_parser", "run_bench"]


def _service(matrices, *, registry=None, fault_plan=None, max_batch=16, capacity=64, **kw):
    return SolveService(
        matrices,
        n_shards=2,
        capacity=capacity,
        batch_policy=BatchPolicy(max_batch=max_batch, max_wait=0.01),
        cost=CostModel(),
        fault_plan=fault_plan,
        registry=registry,
        **kw,
    )


def _outcome_sig(results):
    """A run's comparable signature: per-request scheduling + numerics."""
    return [
        (r.request_id, r.outcome, r.shard, r.batch_size, r.iterations, r.residual)
        for r in results
    ]


def _solutions_identical(a, b):
    """Bitwise equality of per-request solutions across two runs."""
    for ra, rb in zip(a, b):
        if (ra.x is None) != (rb.x is None):
            return False
        if ra.x is not None and not np.array_equal(ra.x, rb.x, equal_nan=True):
            return False
    return True


def _make_controller(max_batch=16):
    """Fresh tune controller for one run (lazy import: ``--tune`` opt-in)."""
    from ..tune import TuneController

    return TuneController(batch_policy=BatchPolicy(max_batch=max_batch, max_wait=0.01))


def _run_workload(
    spec, *, registry=None, fault_plan=None, max_batch=16, capacity=64, tune=False
):
    matrices = build_matrices(spec.patterns)
    service = _service(
        matrices,
        registry=registry,
        fault_plan=fault_plan,
        max_batch=max_batch,
        capacity=capacity,
        controller=_make_controller(max_batch) if tune else None,
    )
    results = service.run(generate_requests(spec, matrices))
    return service, results


def _measure_speedup(widths, *, nx=48, tol=1e-8, maxiter=60):
    """Warm-cache wall-clock: one multi-RHS solve vs a per-column loop."""
    import time  # verify: ok[JAV005] — bench-only wall-clock measurement

    A = grid2d(nx)
    rf = ResilientFactor().setup(A)
    # a minimal FactorEntry stand-in: the measured object is the applies
    entry = dataclasses.make_dataclass(
        "E", ["factor", "apply_multi"], namespace={"refresh_applies": lambda self: None}
    )(rf, rf.build_multi_solver())
    rng = np.random.default_rng(11)
    out = {}
    target_met = False
    for k in widths:
        B = rng.standard_normal((A.n_rows, k))
        batch_samples = []
        seq_samples = []
        for _ in range(3):
            t0 = time.perf_counter()  # verify: ok[JAV005]
            blocked_richardson(A, entry, B, tol, maxiter)
            batch_samples.append(time.perf_counter() - t0)  # verify: ok[JAV005]
            t0 = time.perf_counter()  # verify: ok[JAV005]
            for j in range(k):
                blocked_richardson(A, entry, B[:, j : j + 1], tol, maxiter)
            seq_samples.append(time.perf_counter() - t0)  # verify: ok[JAV005]
        best_batch = min(batch_samples)
        best_seq = min(seq_samples)
        speedup = best_seq / best_batch
        out[str(k)] = {
            "batched_s": best_batch,
            "sequential_s": best_seq,
            "speedup": speedup,
            # per-repeat samples: the regression tracker's noise floor
            "batched_samples": batch_samples,
            "sequential_samples": seq_samples,
        }
        if k >= 8 and speedup >= 3.0:
            target_met = True
    out["target_met"] = target_met
    return out


def run_bench(*, check=False, seed=0, out_path="BENCH_serve.json", scheduler=None,
              workload="poisson", tune=False):
    """Run the serving benchmark; returns (record, n_failures).

    ``scheduler`` stamps every generated request with that trisolve
    scheduler (see :data:`repro.sched.SCHEDULER_NAMES`); the default
    ``None`` keeps the historical p2p pricing, bit-identical to the
    pre-knob service.  ``workload`` selects the arrival/mix shape (one
    of :data:`repro.serve.workload.WORKLOAD_SHAPES`): ``diurnal``,
    ``flash_crowd`` and ``hot_key_storm`` stress the queue and the
    factor caches in ways the constant-rate stream cannot.
    """
    failures = []

    def gate(ok, name):
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        if not ok:
            failures.append(name)

    if check:
        spec = WorkloadSpec(
            seed=seed,
            n_requests=48,
            rate=600.0,
            patterns=("grid2d-12", "grid2d-16"),
            deadline_lo=0.02,
            deadline_hi=0.2,
            maxiter=60,
            scheduler=scheduler,
            shape=workload,
            burst_at=0.02,
            burst_duration=0.03,
        )
    else:
        spec = WorkloadSpec(
            seed=seed,
            n_requests=240,
            rate=500.0,
            patterns=("grid2d-16", "grid2d-24", "convect2d-16", "circuit-400"),
            deadline_lo=0.05,
            deadline_hi=0.5,
            maxiter=80,
            scheduler=scheduler,
            shape=workload,
        )

    print("serve bench: workload" + (" (tuned)" if tune else ""))
    registry = MetricsRegistry()
    _, results = _run_workload(spec, registry=registry, tune=tune)
    summary = summarize(results)
    gate(len(results) == spec.n_requests, "every request terminated")
    gate(all(r.outcome in OUTCOMES for r in results), "all outcomes structured")
    # the conservation auditor is the stronger form of the two gates
    # above: exactly one structured outcome per submitted request id,
    # solutions present and finite exactly when served
    conserv = check_conservation(
        generate_requests(spec, build_matrices(spec.patterns)), results
    )
    for v in conserv.violations[:4]:
        print(f"    {v}")
    gate(conserv.ok, "request conservation audited")

    print("serve bench: deterministic replay")
    _, replay = _run_workload(spec, tune=tune)
    replay_ok = _outcome_sig(results) == _outcome_sig(replay) and _solutions_identical(
        results, replay
    )
    gate(replay_ok, "same seed replays bit-identically")

    print("serve bench: batched vs sequential identity")
    # best-effort deadlines and an unbounded queue: admission and
    # demotion out of the picture, so the comparison is purely numerical
    # (sequential serving is slower on the virtual clock and would
    # otherwise overflow the queue and reject the tail)
    ident_spec = dataclasses.replace(spec, deadline_lo=1e9, deadline_hi=1e9)
    _, batched = _run_workload(ident_spec, max_batch=32, capacity=spec.n_requests)
    _, seq = _run_workload(ident_spec, max_batch=1, capacity=spec.n_requests)
    ident_ok = _solutions_identical(batched, seq) and [
        r.outcome for r in batched
    ] == [r.outcome for r in seq]
    gate(ident_ok, "batched solutions bit-identical to max_batch=1")
    mean_width = float(np.mean([r.batch_size for r in batched if r.batch_size]))
    gate(mean_width > 1.0, "batching actually coalesced requests")

    print("serve bench: faulted workload")
    plan = FaultPlan.seeded(
        2,
        n_rows=spec.n_requests,
        seed=seed + 1,
        n_stragglers=1,
        slowdown=4.0,
        spin_fault_frac=0.1,
        dropped=((0, 3), (1, 7)),
        watchdog_timeout=0.02,
    )
    fault_spec = dataclasses.replace(spec, deadline_lo=0.01, deadline_hi=0.1)
    _, faulted = _run_workload(fault_spec, fault_plan=plan, tune=tune)
    _, faulted2 = _run_workload(fault_spec, fault_plan=plan, tune=tune)
    gate(
        len(faulted) == spec.n_requests
        and all(r.outcome in OUTCOMES for r in faulted),
        "faulted run: every request terminated with a structured outcome",
    )
    gate(
        _outcome_sig(faulted) == _outcome_sig(faulted2),
        "faulted run replays deterministically",
    )
    fault_conserv = check_conservation(
        generate_requests(fault_spec, build_matrices(fault_spec.patterns)), faulted
    )
    for v in fault_conserv.violations[:4]:
        print(f"    {v}")
    gate(fault_conserv.ok, "faulted run conserves requests")
    fault_summary = summarize(faulted)

    speedup = None
    if not check:
        print("serve bench: warm-cache batched speedup (wall clock)")
        speedup = _measure_speedup((8, 16, 32))
        gate(speedup["target_met"], "≥3x batched throughput at some width ≥ 8")
        for k in ("8", "16", "32"):
            print(f"    width {k:>2}: {speedup[k]['speedup']:.2f}x")

    snapshot = registry.snapshot()
    gate(not validate_metrics(snapshot), "metrics snapshot validates")

    record = {
        "bench": "serve",
        "mode": "check" if check else "full",
        "scheduler": scheduler or "p2p",
        "tuned": bool(tune),
        "spec": dataclasses.asdict(spec),
        "workload": summary,
        "fault_workload": fault_summary,
        "replay_identical": replay_ok,
        "batch_identity": ident_ok,
        "mean_batch_width": mean_width,
        "speedup": speedup,
        "failures": failures,
        "metrics": snapshot,
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(record, fh, indent=2)
        print(f"wrote {out_path}")
    print(
        f"workload: served {summary['outcomes'].get('served', 0)}/{summary['n_requests']}"
        f", p50 {summary['p50_latency']:.4f}, p99 {summary['p99_latency']:.4f}, "
        f"mean batch {summary['mean_batch_size']:.2f}, "
        f"goodput {summary['goodput']:.1f}/s"
    )
    return record, len(failures)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro serve", description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)
    b = sub.add_parser("bench", help="run the serving benchmark / CI gate")
    b.add_argument("--check", action="store_true", help="fast CI gate")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    b.add_argument(
        "--scheduler",
        default=None,
        choices=list(SCHEDULER_NAMES),
        help="trisolve scheduler stamped on every request "
        "(default: the service's p2p pricing, unchanged)",
    )
    b.add_argument(
        "--workload",
        default="poisson",
        choices=list(WORKLOAD_SHAPES),
        help="arrival/mix shape: constant-rate poisson (default), diurnal "
        "rate curve, flash crowd, hot-key storm, or multi-region mix",
    )
    b.add_argument(
        "--tune",
        action="store_true",
        help="enable the repro.tune online controller for the workload "
        "runs (off by default; numerics are bit-identical either way)",
    )
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _, n_failures = run_bench(
        check=args.check, seed=args.seed, out_path=args.out,
        scheduler=args.scheduler, workload=args.workload, tune=args.tune,
    )
    if n_failures:
        print(f"serve bench: {n_failures} gate(s) FAILED")
        return 1
    print("serve bench: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
