"""Solve requests and their structured outcomes.

The serving layer's unit of work is a :class:`SolveRequest`: one
right-hand side against one registered matrix, with a solver choice, a
convergence tolerance, an absolute deadline and a priority.  Every
request admitted to the service terminates in exactly one
:class:`RequestResult` whose ``outcome`` is one of :data:`OUTCOMES` —
there is no fifth state and no silent drop, which is what lets the
fault-injected workload tests assert "no hangs" by counting.

All times are *virtual*: the deterministic service core
(:mod:`repro.serve.workers`) advances a simulated clock, so a workload
replays bit-for-bit from its seed.  ``deadline`` and ``arrival_time``
live on that clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["OUTCOMES", "SLA_CLASSES", "SolveRequest", "RequestResult"]

#: the complete outcome vocabulary — every admitted request ends in one
OUTCOMES = ("served", "deadline_miss", "rejected", "breakdown")

#: per-tenant service classes, tightest first.  Under ``edf`` fairness
#: the admission queue extracts by ``(sla_rank, deadline, ...)`` — an
#: interactive request with a loose deadline still beats a batch
#: request with a tight one, because the class encodes the *contract*
#: (what the tenant paid for), not the instantaneous urgency.
SLA_CLASSES = ("interactive", "standard", "batch")


@dataclass(frozen=True, eq=False)
class SolveRequest:
    """One solve of ``A[matrix_key] x = b`` under a deadline.

    ``priority`` orders requests *within* a tenant (higher first);
    fairness across tenants is the admission queue's round-robin, so a
    high-priority tenant cannot starve the others.  ``deadline`` is an
    absolute virtual time; ``math.inf`` means best-effort.
    ``scheduler`` picks the trisolve synchronization strategy for this
    request's preconditioner applies (one of
    :data:`repro.sched.SCHEDULER_NAMES`); ``None`` means the service
    default (p2p — behavior unchanged from before the knob existed).
    """

    request_id: int
    tenant: str
    matrix_key: str
    b: np.ndarray
    solver: str = "richardson"
    tol: float = 1e-8
    deadline: float = math.inf
    priority: int = 0
    arrival_time: float = 0.0
    maxiter: int = 200
    scheduler: str | None = None
    sla: str = "standard"

    def __post_init__(self):
        if self.sla not in SLA_CLASSES:
            raise ValueError(f"sla must be one of {SLA_CLASSES}, got {self.sla!r}")
        object.__setattr__(self, "b", np.asarray(self.b, dtype=np.float64))
        if self.b.ndim != 1:
            raise ValueError(f"b must be 1-D, got shape {self.b.shape}")
        if self.tol <= 0.0:
            raise ValueError(f"tol must be positive, got {self.tol}")
        if self.maxiter < 1:
            raise ValueError(f"maxiter must be >= 1, got {self.maxiter}")
        if self.scheduler is not None:
            from ..sched.options import SCHEDULER_NAMES

            if self.scheduler not in SCHEDULER_NAMES:
                raise ValueError(
                    f"unknown scheduler {self.scheduler!r}; "
                    f"one of {SCHEDULER_NAMES} or None"
                )

    @property
    def batch_key(self):
        """What must match for two requests to share a multi-RHS batch.

        The pattern fingerprint keys the *factor* cache; batching
        additionally requires identical solver semantics — same matrix
        (hence same values, not just pattern), tolerance and iteration
        cap — so a batched column is bit-identical to the request
        served alone.  The scheduler is part of the key: exact
        schedulers produce identical bits, but their *cost* (and an
        elastic request's tolerance contract) differs, so mixed batches
        would be mis-priced.
        """
        return (self.matrix_key, self.solver, self.tol, self.maxiter, self.scheduler)

    @property
    def sla_rank(self):
        """Position of this request's SLA class in :data:`SLA_CLASSES` (0 = tightest)."""
        return SLA_CLASSES.index(self.sla)


@dataclass(eq=False)
class RequestResult:
    """The structured terminal state of one request.

    ``outcome`` ∈ :data:`OUTCOMES`.  A ``deadline_miss`` still carries
    the computed solution (the work was done, just late); a
    ``rejected`` request never ran (``x is None``); a ``breakdown``
    means the solve produced non-finite values even after the
    resilience chain's one permitted mid-solve demotion.
    """

    request_id: int
    outcome: str
    x: np.ndarray | None = None
    iterations: int = 0
    residual: float = math.nan
    converged: bool = False
    arrival_time: float = 0.0
    start_time: float = math.nan
    finish_time: float = math.nan
    shard: int = -1
    batch_size: int = 0
    variant: str | None = None
    detail: str = ""

    def __post_init__(self):
        if self.outcome not in OUTCOMES:
            raise ValueError(f"outcome must be one of {OUTCOMES}, got {self.outcome!r}")

    @property
    def latency(self) -> float:
        """Arrival → termination on the virtual clock (NaN for rejects)."""
        return self.finish_time - self.arrival_time

    @property
    def wait_time(self) -> float:
        """Arrival → dispatch (queueing + batching delay)."""
        return self.start_time - self.arrival_time

    def to_dict(self):
        """JSON-ready summary (the solution vector is deliberately omitted)."""
        return {
            "request_id": int(self.request_id),
            "outcome": self.outcome,
            "iterations": int(self.iterations),
            "residual": float(self.residual),
            "converged": bool(self.converged),
            "arrival_time": float(self.arrival_time),
            "start_time": float(self.start_time),
            "finish_time": float(self.finish_time),
            "shard": int(self.shard),
            "batch_size": int(self.batch_size),
            "variant": self.variant,
            "detail": self.detail,
        }
