"""repro.serve — a deterministic batched preconditioned-solve service.

The serving layer closes the loop the paper opens: Javelin makes one
incomplete factorization cheap to *apply* many times; a serving tier
is where "many times" actually comes from.  This package turns the
stack below it into a request/response system:

* :mod:`repro.serve.request` — :class:`SolveRequest` /
  :class:`RequestResult` and the closed outcome vocabulary
  (``served``, ``deadline_miss``, ``rejected``, ``breakdown``);
* :mod:`repro.serve.queue` — bounded :class:`AdmissionQueue` with
  backpressure (reject / shed-oldest) and per-tenant fairness;
* :mod:`repro.serve.batcher` — :class:`MicroBatcher` coalescing
  compatible requests into multi-RHS blocks for the level-batched
  trisolve kernels (close on max-size, max-wait, deadline pressure);
* :mod:`repro.serve.factor_cache` — pattern-keyed LRU of
  :class:`~repro.resilience.ResilientFactor`-built preconditioners;
* :mod:`repro.serve.workers` — :class:`WorkerShard` and the
  virtual-clock :class:`SolveService` event loop (deadline-aware
  factorization demotion, fault-plan perturbations, metric wiring);
* :mod:`repro.serve.workload` — seeded open-loop Poisson workloads;
* :mod:`repro.serve.cli` — ``repro serve bench`` and its CI gate.

The core is synchronous and single-threaded on a *virtual* clock:
time is charged by a :class:`CostModel`, so every run — including
fault-injected ones — replays bit-for-bit from its seed.  Batching is
numerically invisible: a batched column is bit-identical to the same
request served alone (asserted by property tests and the bench gate).
"""

from .request import OUTCOMES, SLA_CLASSES, RequestResult, SolveRequest
from .queue import ADMISSION_POLICIES, FAIRNESS_MODES, AdmissionQueue
from .batcher import Batch, BatchPolicy, MicroBatcher
from .factor_cache import FactorCache, FactorEntry, live_factor_caches
from .staleness import STALENESS_MODES, StalenessPolicy
from .workers import SOLVERS, CostModel, SolveService, WorkerShard, blocked_richardson
from .workload import (
    WORKLOAD_SHAPES,
    WorkloadSpec,
    arrival_rate,
    build_matrices,
    generate_requests,
    summarize,
)

__all__ = [
    "OUTCOMES",
    "SLA_CLASSES",
    "SolveRequest",
    "RequestResult",
    "ADMISSION_POLICIES",
    "FAIRNESS_MODES",
    "AdmissionQueue",
    "STALENESS_MODES",
    "StalenessPolicy",
    "BatchPolicy",
    "Batch",
    "MicroBatcher",
    "FactorCache",
    "FactorEntry",
    "live_factor_caches",
    "SOLVERS",
    "CostModel",
    "WorkerShard",
    "SolveService",
    "blocked_richardson",
    "WORKLOAD_SHAPES",
    "WorkloadSpec",
    "arrival_rate",
    "build_matrices",
    "generate_requests",
    "summarize",
]
