"""Pattern-keyed LRU of ResilientFactor-built preconditioners.

Where the symbolic cache (:mod:`repro.kernels.cache`) memoizes
*structure* — level sets, sweep plans — this cache holds the expensive
part a serving system actually amortizes: the factored preconditioner
itself, built once per pattern by the breakdown-safe
:class:`~repro.resilience.ResilientFactor` chain and reused for every
subsequent request that hits the same fingerprint.  A warm hit turns a
request into pure solve work; a cold miss pays the factorization under
the request's deadline budget (the shard may demote the factorization
tier to fit — see :mod:`repro.serve.workers`).

Each worker shard owns a private instance: shard affinity routes a
pattern to one shard, so sharding the cache costs no duplicate entries
while keeping the deterministic core free of shared mutable state (and
of locks — JAV002).  ``stats()`` mirrors the symbolic cache's snapshot
shape so :func:`repro.obs.record_cache_metrics` works on either.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["FactorEntry", "FactorCache", "live_factor_caches"]

#: every FactorCache registers itself here (weakly), so the obs layer
#: can aggregate hit/miss/eviction counts across all live caches
#: without the serving layers having to thread a registry through
_LIVE_CACHES: weakref.WeakSet = weakref.WeakSet()


def live_factor_caches():
    """All live :class:`FactorCache` instances, stable order by name.

    The observability collector
    (:func:`repro.obs.record_factor_cache_metrics`) iterates this to
    report factor-cache counts next to the symbolic cache's — sorted so
    the metric names a snapshot produces are deterministic.
    """
    return sorted(_LIVE_CACHES, key=lambda c: c.name)


@dataclass(eq=False)
class FactorEntry:
    """One cached preconditioner and what it cost to build.

    ``apply_one``/``apply_multi`` are the current 1-RHS and multi-RHS
    applies (rebuilt together on a mid-solve demotion); ``variant`` is
    the resilience chain's winner; ``demoted`` records that the factor
    tier was lowered to fit a deadline budget; ``n_levels``/``nnz``
    feed the virtual cost model.
    """

    fingerprint: str
    factor: object
    apply_one: object
    apply_multi: object
    variant: str
    n_levels: int
    nnz: int
    build_cost: float = 0.0
    demoted: bool = False
    resetups: int = 0
    #: per-scheduler sync-point counts, lazily priced by the shards
    sync_points: dict = field(default_factory=dict)

    def refresh_applies(self):
        """Rebuild both applies after the factor's chain advanced."""
        self.apply_one = self.factor.build_solver()
        self.apply_multi = self.factor.build_multi_solver()
        self.variant = self.factor.report.final_variant
        self.resetups = self.factor.report.resetups


class FactorCache:
    """LRU of :class:`FactorEntry`, keyed by pattern fingerprint."""

    def __init__(self, max_entries=8, *, name=None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.name = str(name) if name is not None else f"factor_cache@{id(self):x}"
        self._entries: OrderedDict[str, FactorEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _LIVE_CACHES.add(self)

    def get(self, fingerprint):
        """The cached entry (refreshing recency), or None on a miss."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(fingerprint)
        return entry

    def put(self, entry: FactorEntry):
        """Insert ``entry``, evicting least-recently-used past capacity."""
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        evicted = []
        while len(self._entries) > self.max_entries:
            _, old = self._entries.popitem(last=False)
            self.evictions += 1
            evicted.append(old)
        return evicted

    def __contains__(self, fingerprint):
        return fingerprint in self._entries

    def __len__(self):
        return len(self._entries)

    def stats(self):
        """Snapshot in the SymbolicCache shape (plus ``max_entries``)."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def clear(self):
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
