"""Pattern-keyed LRU of ResilientFactor-built preconditioners.

Where the symbolic cache (:mod:`repro.kernels.cache`) memoizes
*structure* — level sets, sweep plans — this cache holds the expensive
part a serving system actually amortizes: the factored preconditioner
itself, built once per pattern by the breakdown-safe
:class:`~repro.resilience.ResilientFactor` chain and reused for every
subsequent request that hits the same fingerprint.  A warm hit turns a
request into pure solve work; a cold miss pays the factorization under
the request's deadline budget (the shard may demote the factorization
tier to fit — see :mod:`repro.serve.workers`).

Each worker shard owns a private instance: shard affinity routes a
pattern to one shard, so sharding the cache costs no duplicate entries
while keeping the deterministic core free of shared mutable state (and
of locks — JAV002).  ``stats()`` mirrors the symbolic cache's snapshot
shape so :func:`repro.obs.record_cache_metrics` works on either.
"""

from __future__ import annotations

import itertools
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["FactorEntry", "FactorCache", "live_factor_caches"]

#: process-local monotonic source for default cache names.  ``id(self)``
#: would be nondeterministic across runs (allocator-dependent), which
#: broke both ``live_factor_caches()`` ordering and the obs metric
#: names derived from it.
_NAME_COUNTER = itertools.count()


def _reset_name_counter():
    """Restart default naming at 0 — test isolation only."""
    global _NAME_COUNTER
    _NAME_COUNTER = itertools.count()

#: every FactorCache registers itself here (weakly), so the obs layer
#: can aggregate hit/miss/eviction counts across all live caches
#: without the serving layers having to thread a registry through
_LIVE_CACHES: weakref.WeakSet = weakref.WeakSet()


def live_factor_caches():
    """All live :class:`FactorCache` instances, stable order by name.

    The observability collector
    (:func:`repro.obs.record_factor_cache_metrics`) iterates this to
    report factor-cache counts next to the symbolic cache's — sorted so
    the metric names a snapshot produces are deterministic.
    """
    return sorted(_LIVE_CACHES, key=lambda c: c.name)


@dataclass(eq=False)
class FactorEntry:
    """One cached preconditioner and what it cost to build.

    ``apply_one``/``apply_multi`` are the current 1-RHS and multi-RHS
    applies (rebuilt together on a mid-solve demotion); ``variant`` is
    the resilience chain's winner; ``demoted`` records that the factor
    tier was lowered to fit a deadline budget; ``n_levels``/``nnz``
    feed the virtual cost model.
    """

    fingerprint: str
    factor: object
    apply_one: object
    apply_multi: object
    variant: str
    n_levels: int
    nnz: int
    build_cost: float = 0.0
    demoted: bool = False
    resetups: int = 0
    #: per-scheduler sync-point counts, lazily priced by the shards
    sync_points: dict = field(default_factory=dict)
    #: structure-only fingerprint — what a value-only revalue must match
    pattern_fp: str = ""
    #: iteration count observed while the factor was fresh (staleness baseline)
    base_iters: float = 0.0
    #: mean iterations / convergence of the most recent solve — the
    #: degradation signal :class:`repro.serve.staleness.StalenessPolicy` reads
    last_iters: float = 0.0
    last_converged: bool = True
    #: batches served against values newer than the factor ("stale" policy)
    stale_steps: int = 0
    #: value-only refactors applied in place
    refactors: int = 0

    def revalue(self, A_new, new_fingerprint):
        """Value-only refresh: same pattern, new values, factor in place.

        Runs the resilient chain's :meth:`refactor` (numeric phase only,
        symbolic products reused) and rebuilds the applies.  The caller
        guarantees ``A_new`` shares this entry's pattern; the factor
        itself re-verifies via its pattern key and raises ``ValueError``
        on a mismatch, so a fingerprint collision cannot silently
        produce a wrong preconditioner.
        """
        self.factor.refactor(A_new)
        self.refresh_applies()
        self.fingerprint = new_fingerprint
        self.stale_steps = 0
        self.refactors += 1

    def refresh_applies(self):
        """Rebuild both applies after the factor's chain advanced."""
        self.apply_one = self.factor.build_solver()
        self.apply_multi = self.factor.build_multi_solver()
        self.variant = self.factor.report.final_variant
        self.resetups = self.factor.report.resetups
        if self.resetups > 0:
            # a mid-solve resetup IS a demotion down the chain — stats
            # and bench output must say so, same as a budget demotion
            self.demoted = True


class FactorCache:
    """LRU of :class:`FactorEntry`, keyed by pattern fingerprint."""

    def __init__(self, max_entries=8, *, name=None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.name = str(name) if name is not None else f"factor_cache-{next(_NAME_COUNTER)}"
        self._entries: OrderedDict[str, FactorEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _LIVE_CACHES.add(self)

    def get(self, fingerprint):
        """The cached entry (refreshing recency), or None on a miss."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(fingerprint)
        return entry

    def put(self, entry: FactorEntry):
        """Insert ``entry``, evicting least-recently-used past capacity."""
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        evicted = []
        while len(self._entries) > self.max_entries:
            _, old = self._entries.popitem(last=False)
            self.evictions += 1
            evicted.append(old)
        return evicted

    def rekey(self, old_fingerprint, new_fingerprint):
        """Move an entry to a new fingerprint key (after a revalue).

        Preserves recency order; the entry's own ``fingerprint`` field
        is the revalue's job, this only fixes the index.  Returns the
        entry, or None if ``old_fingerprint`` is absent.
        """
        if old_fingerprint not in self._entries:
            return None
        entry = self._entries.pop(old_fingerprint)
        self._entries[new_fingerprint] = entry
        return entry

    def __contains__(self, fingerprint):
        return fingerprint in self._entries

    def __len__(self):
        return len(self._entries)

    def stats(self):
        """Snapshot in the SymbolicCache shape (plus ``max_entries``)."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def clear(self):
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
