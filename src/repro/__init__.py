"""Javelin: a scalable two-stage parallel incomplete LU framework.

Reproduction of *Javelin: A Scalable Implementation for Sparse
Incomplete LU Factorization* (Booth & Bolet, IPPS 2019), built as a
complete Python library: the sparse substrate, the orderings, the
two-stage factorization with point-to-point synchronization, the
co-designed triangular solves, the Krylov solvers that consume them,
the baselines the paper compares against, a simulated many-core machine
standing in for the Haswell/KNL testbeds, and the synthetic replica of
the SuiteSparse test suite.

Quick start::

    import numpy as np
    from repro import JavelinILU, build_matrix, preorder_for_javelin, gmres

    A = preorder_for_javelin(build_matrix("thermal2"))
    ilu = JavelinILU().setup(A)
    ilu.factor()
    b = np.ones(A.n_rows)
    result = gmres(A, b, M=ilu.solve, tol=1e-6)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-table/figure reproduction harness.
"""

from .core import (
    JavelinILU,
    JavelinOptions,
    FactorResult,
    ScheduleOptions,
    build_schedule,
    ilu0_factor,
    iluk_factor,
    ilut_factor,
    iluk_tau_factor,
    PivotBreakdownError,
    FactorizationBreakdown,
)
from .machine import SimMachine, haswell, knl, uniform_machine
from .matrices import build_matrix, preorder_for_javelin, SUITE, GROUP_A, GROUP_B
from .ordering import (
    rcm_order,
    minimum_degree_order,
    nested_dissection_order,
    natural_order,
    dulmage_mendelsohn_row_perm,
    level_schedule,
)
from .resilience import FaultPlan, FaultRunReport, ResilienceReport, ResilientFactor, RetryPolicy
from .solvers import cg, gmres, bicgstab, fgmres
from .sparse import CSRMatrix, COOMatrix, CSCMatrix, from_dense, read_matrix_market

__version__ = "1.0.0"

__all__ = [
    "JavelinILU",
    "JavelinOptions",
    "FactorResult",
    "ScheduleOptions",
    "build_schedule",
    "ilu0_factor",
    "iluk_factor",
    "ilut_factor",
    "iluk_tau_factor",
    "PivotBreakdownError",
    "SimMachine",
    "haswell",
    "knl",
    "uniform_machine",
    "build_matrix",
    "preorder_for_javelin",
    "SUITE",
    "GROUP_A",
    "GROUP_B",
    "rcm_order",
    "minimum_degree_order",
    "nested_dissection_order",
    "natural_order",
    "dulmage_mendelsohn_row_perm",
    "level_schedule",
    "cg",
    "gmres",
    "bicgstab",
    "fgmres",
    "FactorizationBreakdown",
    "ResilientFactor",
    "RetryPolicy",
    "ResilienceReport",
    "FaultPlan",
    "FaultRunReport",
    "CSRMatrix",
    "COOMatrix",
    "CSCMatrix",
    "from_dense",
    "read_matrix_market",
    "__version__",
]
