"""Noise-aware performance-regression tracking over committed bench files.

``benchmarks/results/BENCH_*.json`` are the repo's performance ledger;
this module diffs two snapshots of that ledger and flags *unexplained*
slowdowns: a metric moved in its bad direction by more than the larger
of a base relative tolerance and a multiple of its own measured noise.

Direction is inferred from the key (timings and miss rates are
lower-better; speedups and hit rates higher-better; everything else —
counts, sizes, configuration echoes — is ignored rather than guessed).
Noise comes from the per-repeat sample arrays ``timeit_best`` now
records alongside each best-of timing: a leaf ``foo_s`` with a sibling
``foo_samples`` gets its tolerance widened to ``noise_mult`` times the
samples' coefficient of variation, so a jittery microbenchmark cannot
fail CI on a rerun while a genuine 2× slowdown still does.

In the style of ``repro verify``, the checker carries its own negative
control: :func:`plant_slowdown` corrupts a snapshot's lower-better
leaves, and the self-test gate asserts the checker *fails* on the
planted copy — a tracker that cannot catch a planted regression is not
tracking anything.
"""

from __future__ import annotations

import copy
import glob
import json
import math
import os

import numpy as np

__all__ = [
    "flatten_bench",
    "direction",
    "compare_docs",
    "check_regressions",
    "plant_slowdown",
    "format_report",
]

#: key fragments that mark a metric as lower-better (timings, misses)
_LOWER = (
    "_s",
    "time",
    "latency",
    "miss_rate",
    "p50",
    "p90",
    "p99",
    "makespan",
    "wait",
    "overhead",
)
#: key fragments that mark a metric as higher-better (rates of goodness)
_HIGHER = (
    "speedup",
    "throughput",
    "goodput",
    "served_fraction",
    "hit_rate",
    "accuracy",
    "gflops",
)


def direction(key):
    """``"lower"`` / ``"higher"`` / ``None`` (no performance meaning)."""
    parts = key.split(".")
    leaf = parts[-1]
    for frag in _HIGHER:
        if frag in leaf:
            return "higher"
    for frag in _LOWER:
        if leaf.endswith("_s") if frag == "_s" else frag in leaf:
            return "lower"
    # scheduler-crossover style: leaves under a "times" node are
    # seconds keyed by scheduler name
    if "times" in parts[:-1]:
        return "lower"
    return None


def flatten_bench(doc, prefix=""):
    """Flatten a bench document to dotted numeric leaves + sample arrays.

    Returns ``(leaves, samples)``: ``leaves`` maps dotted keys to
    floats; ``samples`` maps dotted keys of per-repeat arrays (keys
    ending in ``_samples``) to float lists.  ``meta`` blocks are
    skipped — toolchain versions are not performance.  Lists of dicts
    (bench entries) are indexed by an identifying field when one exists
    so reordered entries still line up.
    """
    leaves: dict = {}
    samples: dict = {}

    def ident(item, i):
        for k in ("name", "shape", "kernel", "case", "workload", "key"):
            v = item.get(k)
            if isinstance(v, str):
                extra = item.get("machine"), item.get("p"), item.get("width")
                tag = ".".join(str(x) for x in extra if x is not None)
                return f"{v}.{tag}" if tag else v
        return str(i)

    def walk(node, path):
        if isinstance(node, dict):
            for k, v in node.items():
                if k == "meta" and not path:
                    continue
                walk(v, f"{path}.{k}" if path else str(k))
        elif isinstance(node, (list, tuple)):
            if node and all(isinstance(x, (int, float)) for x in node):
                if path.endswith("_samples"):
                    samples[path] = [float(x) for x in node]
                return  # other numeric arrays (histograms etc.): not metrics
            for i, item in enumerate(node):
                sub = ident(item, i) if isinstance(item, dict) else str(i)
                walk(item, f"{path}.{sub}" if path else sub)
        elif isinstance(node, bool):
            return
        elif isinstance(node, (int, float)):
            if math.isfinite(float(node)):
                leaves[path] = float(node)

    walk(doc, prefix)
    return leaves, samples


def _noise_cv(key, samples):
    """Coefficient of variation of the leaf's sibling sample array."""
    if key.endswith("_s"):
        sib = key[: -len("_s")] + "_samples"
        arr = samples.get(sib)
        if arr and len(arr) >= 2:
            a = np.asarray(arr, dtype=np.float64)
            mean = float(a.mean())
            if mean > 0:
                return float(a.std()) / mean
    return 0.0


def compare_docs(old_doc, new_doc, *, base_rel_tol=0.15, noise_mult=3.0):
    """Diff two bench documents; returns a structured report dict.

    A *regression* is a directed metric that moved in its bad direction
    by more than ``max(base_rel_tol, noise_mult × cv)`` relative to the
    old value; symmetric movement in the good direction is reported as
    an improvement.  Undirected leaves and keys present on only one
    side are counted but never fail the check — schema growth is not a
    slowdown.
    """
    old, old_samples = flatten_bench(old_doc)
    new, new_samples = flatten_bench(new_doc)
    regressions, improvements = [], []
    compared = 0
    for key in sorted(set(old) & set(new)):
        d = direction(key)
        if d is None:
            continue
        a, b = old[key], new[key]
        if a == 0.0:
            continue
        compared += 1
        cv = max(_noise_cv(key, old_samples), _noise_cv(key, new_samples))
        tol = max(base_rel_tol, noise_mult * cv)
        delta = (b - a) / abs(a)
        bad = delta if d == "lower" else -delta
        record = {
            "key": key,
            "old": a,
            "new": b,
            "rel_change": delta,
            "tolerance": tol,
            "direction": d,
        }
        if bad > tol:
            regressions.append(record)
        elif -bad > tol:
            improvements.append(record)
    return {
        "ok": not regressions,
        "compared": compared,
        "regressions": regressions,
        "improvements": improvements,
        "only_old": sorted(set(old) - set(new)),
        "only_new": sorted(set(new) - set(old)),
    }


def plant_slowdown(doc, *, factor=1.5):
    """Negative control: a copy with every lower-better leaf slowed ``factor``×.

    Walks the same structure :func:`flatten_bench` reads, so whatever
    the checker would compare is exactly what gets corrupted.
    """

    def walk(node, path):
        if isinstance(node, dict):
            for k, v in node.items():
                if k == "meta" and not path:
                    continue
                sub = f"{path}.{k}" if path else str(k)
                if (
                    isinstance(v, (int, float))
                    and not isinstance(v, bool)
                    and direction(sub) == "lower"
                ):
                    node[k] = float(v) * factor
                else:
                    walk(v, sub)
        elif isinstance(node, (list, tuple)):
            for item in node:
                walk(item, path)

    planted = copy.deepcopy(doc)
    walk(planted, "")
    return planted


def check_regressions(
    results_dir,
    against_dir=None,
    *,
    base_rel_tol=0.15,
    noise_mult=3.0,
    self_test=True,
):
    """Check every ``BENCH_*.json`` under ``results_dir``.

    With ``against_dir`` the files there are the *old* baseline and
    ``results_dir`` the candidate; without it each committed file is
    compared against itself (a schema/parse validation that must pass
    trivially).  ``self_test`` additionally plants a slowdown into each
    baseline and asserts the checker catches it — the run fails if the
    planted regression goes undetected.
    """
    paths = sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json")))
    if not paths:
        raise FileNotFoundError(f"no BENCH_*.json under {results_dir}")
    files = {}
    ok = True
    for path in paths:
        name = os.path.basename(path)
        with open(path) as fh:
            new_doc = json.load(fh)
        if against_dir is not None:
            old_path = os.path.join(against_dir, name)
            if not os.path.exists(old_path):
                files[name] = {"ok": True, "skipped": "no baseline"}
                continue
            with open(old_path) as fh:
                old_doc = json.load(fh)
        else:
            old_doc = new_doc
        report = compare_docs(
            old_doc, new_doc, base_rel_tol=base_rel_tol, noise_mult=noise_mult
        )
        if self_test:
            planted = plant_slowdown(old_doc, factor=1.0 + 2.0 * base_rel_tol + 0.5)
            control = compare_docs(
                old_doc, planted, base_rel_tol=base_rel_tol, noise_mult=noise_mult
            )
            report["self_test_caught"] = bool(control["regressions"])
            if report["compared"] and not report["self_test_caught"]:
                report["ok"] = False
        files[name] = report
        ok = ok and report["ok"]
    return {"ok": ok, "files": files}


def format_report(report):
    """Human-readable summary of a :func:`check_regressions` report."""
    lines = []
    for name, rep in report["files"].items():
        if "skipped" in rep:
            lines.append(f"{name}: skipped ({rep['skipped']})")
            continue
        status = "ok" if rep["ok"] else "FAIL"
        extra = ""
        if "self_test_caught" in rep:
            extra = ", self-test " + (
                "caught" if rep["self_test_caught"] else "MISSED"
            )
        lines.append(
            f"{name}: {status} — {rep['compared']} metrics compared, "
            f"{len(rep['regressions'])} regressions, "
            f"{len(rep['improvements'])} improvements{extra}"
        )
        for r in rep["regressions"]:
            lines.append(
                f"  REGRESSION {r['key']}: {r['old']:.4g} -> {r['new']:.4g} "
                f"({r['rel_change']:+.1%}, tol {r['tolerance']:.0%})"
            )
    lines.append("overall: " + ("ok" if report["ok"] else "FAIL"))
    return "\n".join(lines)
