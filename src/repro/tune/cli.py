"""``repro tune`` — recommend configurations, fit the model, gate CI.

::

    python -m repro tune recommend --shape grid-24 --machine haswell --sla standard
    python -m repro tune fit --out model.json
    python -m repro tune check-regressions
    python -m repro tune check-regressions --against /path/to/old/results

``recommend`` prints the static (backend, scheduler, batch width,
factorization tier) pick for a named bench shape; ``fit`` re-fits the
cost model from the committed ``benchmarks/results/BENCH_*.json`` and
writes it as JSON; ``check-regressions`` diffs bench snapshots with
noise-aware thresholds and exits non-zero on an unexplained slowdown
— including when its own planted-slowdown negative control goes
uncaught.
"""

from __future__ import annotations

import argparse
import json

__all__ = ["main", "build_parser"]


def _load_model(args):
    from .model import TuneModel, default_model

    if getattr(args, "model", None):
        with open(args.model) as fh:
            return TuneModel.from_dict(json.load(fh))
    return default_model(getattr(args, "results", None))


def cmd_recommend(args):
    from .features import extract_features
    from .shapes import bench_shape

    model = _load_model(args)
    features = extract_features(bench_shape(args.shape))
    choice = model.recommend(features, args.machine, args.sla, p=args.p)
    doc = {
        "shape": args.shape,
        "machine": args.machine,
        "sla": args.sla,
        "choice": choice.as_dict(),
        "serve_scheduler_override": model.serve_scheduler(features),
    }
    print(json.dumps(doc, indent=2))
    return 0


def cmd_fit(args):
    from .model import default_model

    model = default_model(args.results, seed=args.seed)
    doc = model.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.out}")
    else:
        print(json.dumps(doc, indent=2))
    return 0


def cmd_check_regressions(args):
    from .model import results_dir
    from .regress import check_regressions, format_report

    report = check_regressions(
        args.results or results_dir(),
        args.against,
        base_rel_tol=args.rel_tol,
        noise_mult=args.noise_mult,
        self_test=not args.no_self_test,
    )
    print(format_report(report))
    return 0 if report["ok"] else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro tune", description="autotuning and regression tracking"
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    sp = sub.add_parser("recommend", help="static config pick for a bench shape")
    sp.add_argument("--shape", required=True, help="chain-N, wide-LxW or grid-N")
    sp.add_argument(
        "--machine", default="haswell", help="haswell | knl | gpulike (default haswell)"
    )
    sp.add_argument(
        "--sla",
        default="standard",
        choices=("interactive", "standard", "batch"),
        help="SLA class setting the batch-width budget",
    )
    sp.add_argument("--p", type=int, default=None, help="thread count (default: all cores)")
    sp.add_argument("--model", default=None, help="fitted model JSON (default: re-fit)")
    sp.add_argument("--results", default=None, help="bench results dir to fit from")
    sp.set_defaults(func=cmd_recommend)

    sp = sub.add_parser("fit", help="fit the cost model from committed bench files")
    sp.add_argument("--out", default=None, help="write the model JSON here")
    sp.add_argument("--results", default=None, help="bench results dir (default: committed)")
    sp.add_argument("--seed", type=int, default=0, help="provenance seed to record")
    sp.set_defaults(func=cmd_fit)

    sp = sub.add_parser(
        "check-regressions", help="noise-aware diff of committed bench files"
    )
    sp.add_argument("--results", default=None, help="candidate results dir")
    sp.add_argument("--against", default=None, help="baseline results dir")
    sp.add_argument(
        "--rel-tol", type=float, default=0.15, help="base relative tolerance"
    )
    sp.add_argument(
        "--noise-mult",
        type=float,
        default=3.0,
        help="tolerance multiplier on the per-repeat sample CV",
    )
    sp.add_argument(
        "--no-self-test",
        action="store_true",
        help="skip the planted-slowdown negative control",
    )
    sp.set_defaults(func=cmd_check_regressions)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
