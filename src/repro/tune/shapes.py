"""Canonical DAG-shape builders shared by the tuner and the benches.

The scheduler crossover study (``benchmarks/bench_sched.py``) records
its points against named shapes — ``chain-400``, ``wide-16x128``,
``grid-24`` — and the cost model re-fits itself from that committed
JSON.  Fitting therefore needs to rebuild the *same* matrix from the
*same* name, so the builders live here, importable from both the bench
scripts and :mod:`repro.tune.model`.

Three families span the level-structure spectrum the schedulers
discriminate on:

* ``chain_matrix(n)`` — a tridiagonal chain: ``n`` levels of width 1,
  the deep/thin extreme where DAG-partition scheduling pays no sync;
* ``wide_matrix(n_levels, width)`` — interleaved independent chains:
  the shallow/wide extreme where level batching already wins;
* ``grid_matrix(nx)`` — the ILU(0) pattern of ``grid2d(nx)`` in level
  order, the realistic mix.

Values are deterministic and diagonally dominant (a factor stand-in),
seeded by the row count, so a shape name always denotes one matrix
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = [
    "chain_matrix",
    "wide_matrix",
    "grid_matrix",
    "with_values",
    "bench_shape",
]


def chain_matrix(n):
    """Tridiagonal chain: ``n`` levels of width 1 — the deep/thin extreme."""
    indptr = [0]
    indices = []
    for i in range(n):
        indices.extend(c for c in (i - 1, i, i + 1) if 0 <= c < n)
        indptr.append(len(indices))
    return with_values(
        CSRMatrix(n, n, np.asarray(indptr), np.asarray(indices), np.ones(len(indices)))
    )


def wide_matrix(n_levels, width):
    """``width`` independent chains interleaved: the shallow/wide extreme.

    Row ``l * width + j`` depends only on its predecessor in chain
    ``j`` — every level holds ``width`` independent rows.
    """
    n = n_levels * width
    indptr = [0]
    indices = []
    for r in range(n):
        l, _ = divmod(r, width)
        if l > 0:
            indices.append(r - width)
        indices.append(r)
        indptr.append(len(indices))
    return with_values(
        CSRMatrix(n, n, np.asarray(indptr), np.asarray(indices), np.ones(len(indices)))
    )


def grid_matrix(nx):
    """ILU(0) pattern of ``grid2d(nx)`` in level order — the realistic mix."""
    from ..core.symbolic import ilu0_pattern
    from ..matrices import grid2d
    from ..ordering.levelsets import level_schedule

    S = ilu0_pattern(grid2d(nx))
    perm = level_schedule(S).permutation()
    Sp = S.permute(row_perm=perm, col_perm=perm)
    return with_values(Sp)


def with_values(S):
    """Deterministic diagonally-dominant values on a pattern (a factor stand-in)."""
    from ..kernels.plans import diag_positions

    rng = np.random.default_rng(S.n_rows)
    F = CSRMatrix(
        S.n_rows, S.n_cols, S.indptr.copy(), S.indices.copy(),
        0.1 * rng.standard_normal(int(S.indptr[-1])),
        sort=False, check=False,
    )
    dp = diag_positions(F)
    F.data[dp] = 3.0 + np.abs(F.data[dp])
    return F


def bench_shape(name):
    """Rebuild a crossover-study shape from its recorded name.

    ``chain-N`` → :func:`chain_matrix`; ``wide-LxW`` →
    :func:`wide_matrix`; ``grid-N`` → :func:`grid_matrix`.  Raises
    ``ValueError`` on anything else — fitting must fail loudly rather
    than silently skip a bench point.
    """
    family, _, param = name.partition("-")
    if family == "chain":
        return chain_matrix(int(param))
    if family == "wide":
        lv, _, w = param.partition("x")
        return wide_matrix(int(lv), int(w))
    if family == "grid":
        return grid_matrix(int(param))
    raise ValueError(
        f"unknown bench shape {name!r}; expected chain-N, wide-LxW or grid-N"
    )
