"""Pattern-fingerprint feature extraction from cached symbolic products.

Everything the cost model conditions on is a pure function of the
sparsity pattern, and everything here is *already computed* by the
symbolic layer: level sets, superstep plans, elastic schedules and
per-row sweep costs all live in the pattern-keyed
:class:`~repro.kernels.cache.SymbolicAnalysis`.  Feature extraction is
therefore a read — it never re-analyzes a pattern the system has
already touched, which is what makes consulting the tuner cheap enough
to do per batch in the serving loop.

The feature vector deliberately mirrors the quantities the paper's
crossover discussion ranks schedulers by: level count and level-width
histogram (thin levels ⇒ sync-bound), critical-path depth (the serial
floor), total sweep work and bytes (the parallel term), bandwidth and
row density (locality), plus the two scheduler-specific structural
counts — superstep count at a reference thread count and the elastic
sweep bound — that price the alternatives' synchronization economy.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..kernels.cache import cached_analysis

__all__ = ["N_WIDTH_BUCKETS", "PatternFeatures", "extract_features"]

#: log2-spaced level-width histogram buckets: bucket ``k`` counts
#: levels of width in ``[2^k, 2^(k+1))``; the last bucket is open-ended
N_WIDTH_BUCKETS = 12


@dataclass(frozen=True)
class PatternFeatures:
    """One pattern's tuning-relevant fingerprint (both sweep directions).

    ``superstep_steps`` and ``elastic_sweeps`` are evaluated at
    ``plan_threads`` / ``plan_staleness`` — they are structural counts
    of cached plans, recorded so a recommendation is reproducible from
    the features alone (the purity contract the property tests assert).
    """

    fingerprint: str
    n: int
    nnz: int
    n_levels: int  # lower + upper sweep levels combined
    n_levels_lower: int
    n_levels_upper: int
    critical_path: int  # rows on the longest dependency chain (lower sweep)
    max_width: int
    mean_width: float
    median_width: float
    width_hist: tuple  # fraction of levels per log2 width bucket
    bandwidth: int
    row_density: float
    total_flops: float  # one full L+U sweep, all rows
    total_bytes: float
    crit_flops: float  # sum over levels of the widest row's flops
    superstep_steps: int
    elastic_sweeps: int
    plan_threads: int
    plan_staleness: int

    def as_vector(self):
        """Flat numeric tuple (histogram inlined) — hashing/property-test aid."""
        out = []
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "fingerprint":
                continue
            if f.name == "width_hist":
                out.extend(float(x) for x in v)
            else:
                out.append(float(v))
        return tuple(out)

    @property
    def nnz_per_level(self):
        """Mean entries swept per level — the batched backend's amortization unit."""
        return self.nnz / max(1, self.n_levels_lower)


def _width_histogram(widths):
    hist = np.zeros(N_WIDTH_BUCKETS)
    if widths.size == 0:
        return tuple(hist)
    buckets = np.minimum(
        np.floor(np.log2(np.maximum(widths, 1))).astype(int), N_WIDTH_BUCKETS - 1
    )
    for b in buckets:
        hist[b] += 1.0
    return tuple(hist / widths.size)


def extract_features(M, *, n_threads=8, staleness=4) -> PatternFeatures:
    """Feature vector of ``M``'s pattern, read off the symbolic cache.

    Deterministic: same pattern (same fingerprint) ⇒ same features,
    across processes — every input is a frozen symbolic product or a
    direct function of ``(indptr, indices)``.
    """
    an = cached_analysis(M)
    lv_lo = an.levels("lower")
    lv_up = an.levels("upper")
    widths = np.diff(lv_lo.level_ptr)

    total_flops = total_bytes = crit_flops = 0.0
    for part, lv in (("lower", lv_lo), ("upper", lv_up)):
        fl, tl = an.solve_costs(part)
        total_flops += float(np.sum(fl))
        total_bytes += 8.0 * float(np.sum(tl))
        fl_levelled = fl[lv.rows]
        lp = lv.level_ptr
        crit_flops += float(
            sum(fl_levelled[lp[i]: lp[i + 1]].max() for i in range(lv.n_levels))
        )

    steps = sum(
        int(an.superstep_plan(part, n_threads=n_threads).n_steps)
        for part in ("lower", "upper")
    )
    sweeps = 0
    for part in ("lower", "upper"):
        es = an.elastic_schedule(part, staleness=staleness)
        sweeps += int(es.final_sweep.max()) + 1 if es.final_sweep.size else 1

    row_of_entry = np.repeat(np.arange(M.n_rows), np.diff(M.indptr))
    bandwidth = (
        int(np.max(np.abs(np.asarray(M.indices) - row_of_entry)))
        if row_of_entry.size
        else 0
    )
    return PatternFeatures(
        fingerprint=an.fingerprint,
        n=int(M.n_rows),
        nnz=int(M.nnz),
        n_levels=int(lv_lo.n_levels + lv_up.n_levels),
        n_levels_lower=int(lv_lo.n_levels),
        n_levels_upper=int(lv_up.n_levels),
        critical_path=int(lv_lo.n_levels),
        max_width=int(widths.max()) if widths.size else 0,
        mean_width=float(widths.mean()) if widths.size else 0.0,
        median_width=float(np.median(widths)) if widths.size else 0.0,
        width_hist=_width_histogram(widths),
        bandwidth=bandwidth,
        row_density=float(M.nnz / max(1, M.n_rows)),
        total_flops=total_flops,
        total_bytes=total_bytes,
        crit_flops=crit_flops,
        superstep_steps=steps,
        elastic_sweeps=sweeps,
        plan_threads=int(n_threads),
        plan_staleness=int(staleness),
    )
