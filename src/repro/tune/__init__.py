"""repro.tune — closed-loop autotuning and performance-regression tracking.

The eighth layer: turns the committed bench artifacts and the
``repro.obs`` counters into decisions.  Three parts:

* :mod:`repro.tune.features` / :mod:`repro.tune.model` — a pattern
  fingerprint feature vector read off the symbolic cache, and a
  deterministic least-squares cost model fit from ``BENCH_*.json``
  exposing ``recommend(pattern, machine, sla)``;
* :mod:`repro.tune.controller` — the ``--tune`` opt-in serving-loop
  feedback controller (scheduler override, batch shape, staleness,
  factor tier), bit-identical numerics by construction;
* :mod:`repro.tune.regress` — noise-aware diffing of committed bench
  files, the ``repro tune check-regressions`` CI gate.
"""

from .controller import TuneController, TunePolicy
from .features import PatternFeatures, extract_features
from .model import (
    SlaSpec,
    TuneChoice,
    TuneModel,
    default_model,
    fit_model,
)
from .regress import check_regressions, plant_slowdown
from .shapes import bench_shape

__all__ = [
    "PatternFeatures",
    "extract_features",
    "SlaSpec",
    "TuneChoice",
    "TuneModel",
    "default_model",
    "fit_model",
    "TuneController",
    "TunePolicy",
    "check_regressions",
    "plant_slowdown",
    "bench_shape",
]
