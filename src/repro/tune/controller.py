"""Online controller: a deterministic feedback loop over serve counters.

The controller closes ROADMAP item 5's loop: ``repro.obs`` records
queue depth, deadline misses and iteration drift, and nothing consumed
them online — every knob stayed a static per-request setting.  The
controller watches those signals in fixed-size windows of completed
batches and adapts, between batches, which of the service's
already-bit-identical paths runs next:

* **scheduler** — per pattern, re-price the sync charge by overriding
  the batch's trisolve scheduler to ``superstep`` when the cached DAG
  partition pays fewer syncs than the level-set default (the dominant
  recoverable lever under shard slowdown faults);
* **batch shape** — under deadline pressure, shorten ``max_wait``
  (stop fishing for batch-mates) and widen ``max_batch`` (amortize the
  inflated per-pass charge across more columns); relax both back when
  the miss rate clears the low watermark;
* **staleness** — when mean iteration counts drift up (stale factors
  degrading convergence), tighten the
  :class:`~repro.serve.staleness.StalenessPolicy` degradation
  thresholds so refactors trigger sooner;
* **factor tier** — optionally (``adapt_tier``) shrink the perceived
  cold-build budget so tight-deadline cold misses demote to the
  cheaper tier immediately rather than gambling on the full build.

Everything is a pure function of the observed window counters, which
are themselves a pure function of the (seeded) workload — so a tuned
run replays identically, and the bitwise-identity guarantee of every
underlying path (batched columns, scheduler modes, demoted-but-equal
default options) is inherited rather than asserted.

The controller deliberately has *no wall-clock inputs and no
randomness*: determinism is what makes the tuned serve bench a
replayable artifact instead of a demo.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = ["TunePolicy", "TuneController"]


@dataclass(frozen=True)
class TunePolicy:
    """Watermarks and step sizes of the feedback loop.

    Windows count *batches*, not requests — batch completion is the
    event the service hands the controller, and a window of batches
    smooths over batch-size variance without needing a clock.
    """

    window: int = 8
    miss_high: float = 0.20  # tighten above this windowed miss rate
    miss_low: float = 0.02  # relax below this
    queue_high: int = 12  # tighten when the queue backs up this far
    min_wait: float = 0.002
    max_wait: float = 0.02
    min_batch: int = 4
    max_batch: int = 64
    wait_shrink: float = 0.5
    wait_grow: float = 1.5
    drift_ratio: float = 1.5  # window mean iters vs baseline ⇒ drift
    stale_tighten: float = 0.75  # degrade_factor multiplier on drift
    adapt_scheduler: bool = True
    adapt_batch: bool = True
    adapt_staleness: bool = True
    adapt_tier: bool = False

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.wait_shrink < 1.0:
            raise ValueError(f"wait_shrink must be in (0, 1), got {self.wait_shrink}")
        if self.wait_grow <= 1.0:
            raise ValueError(f"wait_grow must be > 1, got {self.wait_grow}")


@dataclass
class _Window:
    """Counters of the current adaptation window."""

    batches: int = 0
    requests: int = 0
    misses: int = 0
    iters: float = 0.0
    peak_queue: int = 0

    def reset(self):
        self.batches = self.requests = self.misses = 0
        self.iters = 0.0
        self.peak_queue = 0


class TuneController:
    """Holds the adaptive knobs the service reads between batches.

    Wire-up (see :class:`repro.serve.workers.SolveService`): the
    service consults :meth:`scheduler_override` when dispatching a
    batch whose requests did not pin a scheduler, and calls
    :meth:`observe` after each batch completes; it then re-reads
    :attr:`batch_policy`, :attr:`staleness` and :attr:`budget_bias`.
    The service never imports this module — the controller is duck-
    typed and ``--tune`` opt-in, so the untuned path is untouched.
    """

    def __init__(self, model=None, *, policy=None, batch_policy=None, staleness=None):
        if model is None:
            from .model import default_model

            model = default_model()
        self.model = model
        self.policy = policy or TunePolicy()
        # base_* are what "relaxed" returns to; current values start there
        from ..serve.batcher import BatchPolicy
        from ..serve.staleness import StalenessPolicy

        self.base_batch_policy = batch_policy or BatchPolicy()
        self.batch_policy = self.base_batch_policy
        self.base_staleness = staleness or StalenessPolicy()
        self.staleness = self.base_staleness
        self.budget_bias = 1.0
        self._window = _Window()
        self._baseline_iters = None  # first completed window's mean
        self._sched_cache: dict = {}  # pattern fingerprint -> override
        self.decisions: list = []  # (now, action, value) audit log
        self.n_windows = 0

    # ------------------------------------------------------------------
    def scheduler_override(self, A):
        """Scheduler to run an unpinned batch under (or ``None``).

        Pure per-pattern decision, cached by pattern fingerprint; the
        feature extraction itself is a symbolic-cache read, so the
        steady-state cost is one dict lookup per batch.
        """
        if not self.policy.adapt_scheduler:
            return None
        from ..kernels.cache import pattern_fingerprint

        fp = pattern_fingerprint(A)
        if fp not in self._sched_cache:
            from .features import extract_features

            self._sched_cache[fp] = self.model.serve_scheduler(extract_features(A))
        return self._sched_cache[fp]

    # ------------------------------------------------------------------
    def observe(self, results, *, queue_depth, now):
        """Account one completed batch; adapt when the window fills."""
        w = self._window
        w.batches += 1
        w.requests += len(results)
        w.misses += sum(1 for r in results if r.outcome == "deadline_miss")
        w.iters += float(sum(r.iterations for r in results))
        w.peak_queue = max(w.peak_queue, int(queue_depth))
        if w.batches >= self.policy.window:
            self._adapt(now)
            w.reset()

    def _adapt(self, now):
        pol = self.policy
        w = self._window
        self.n_windows += 1
        miss_rate = w.misses / w.requests if w.requests else 0.0
        mean_iters = w.iters / w.requests if w.requests else 0.0
        if self._baseline_iters is None and mean_iters > 0.0:
            self._baseline_iters = mean_iters

        if pol.adapt_batch:
            bp = self.batch_policy
            # queue depth alone is not distress — a deep queue with no
            # misses just means batching has room to drain it; only
            # tighten on queue pressure when misses corroborate
            if miss_rate > pol.miss_high or (
                w.peak_queue > pol.queue_high and miss_rate > pol.miss_low
            ):
                new_wait = max(pol.min_wait, bp.max_wait * pol.wait_shrink)
                new_batch = min(pol.max_batch, bp.max_batch * 2)
                if (new_wait, new_batch) != (bp.max_wait, bp.max_batch):
                    self.batch_policy = dataclasses.replace(
                        bp, max_wait=new_wait, max_batch=new_batch
                    )
                    self._log(now, "tighten_batch", (new_wait, new_batch))
            elif miss_rate < pol.miss_low and w.peak_queue <= pol.queue_high // 2:
                base = self.base_batch_policy
                new_wait = min(base.max_wait, bp.max_wait * pol.wait_grow)
                new_batch = max(base.max_batch, bp.max_batch // 2)
                if (new_wait, new_batch) != (bp.max_wait, bp.max_batch):
                    self.batch_policy = dataclasses.replace(
                        bp, max_wait=new_wait, max_batch=new_batch
                    )
                    self._log(now, "relax_batch", (new_wait, new_batch))

        if pol.adapt_staleness and self._baseline_iters:
            drifting = mean_iters > pol.drift_ratio * self._baseline_iters
            st = self.staleness
            if drifting and st.mode == "stale":
                tightened = dataclasses.replace(
                    st,
                    degrade_factor=max(1.0, st.degrade_factor * pol.stale_tighten),
                    degrade_margin=max(1, st.degrade_margin - 1),
                )
                if tightened != st:
                    self.staleness = tightened
                    self._log(
                        now,
                        "tighten_staleness",
                        (tightened.degrade_factor, tightened.degrade_margin),
                    )
            elif not drifting and st != self.base_staleness:
                self.staleness = self.base_staleness
                self._log(now, "relax_staleness", None)

        if pol.adapt_tier:
            if miss_rate > pol.miss_high and self.budget_bias == 1.0:
                # shrink the perceived cold-build budget: tight-deadline
                # cold misses demote immediately instead of gambling on
                # the full-tier build
                self.budget_bias = 0.5
                self._log(now, "demote_bias", 0.5)
            elif miss_rate < pol.miss_low and self.budget_bias != 1.0:
                self.budget_bias = 1.0
                self._log(now, "restore_bias", 1.0)

    def _log(self, now, action, value):
        self.decisions.append({"now": float(now), "action": action, "value": value})

    # ------------------------------------------------------------------
    def metrics(self):
        """Counters for the obs registry (``tune.*`` namespace)."""
        actions: dict = {}
        for d in self.decisions:
            actions[d["action"]] = actions.get(d["action"], 0) + 1
        return {
            "tune.windows": self.n_windows,
            "tune.decisions": len(self.decisions),
            "tune.sched_overrides": sum(
                1 for v in self._sched_cache.values() if v is not None
            ),
            **{f"tune.action.{k}": v for k, v in sorted(actions.items())},
        }
