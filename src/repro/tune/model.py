"""Fitted cost model and ``recommend(pattern, machine, sla)``.

The model turns the committed bench artifacts into a *policy*: given a
pattern's :class:`~repro.tune.features.PatternFeatures`, a machine and
an SLA, pick the (backend, scheduler, batch width, factorization tier)
tuple the knobs currently leave to the operator.

Three fits, all deterministic (``numpy.linalg.lstsq`` on fixed inputs
— the recorded ``seed`` only stamps provenance):

* **Scheduler** — per-scheduler linear models over structural columns
  (serial critical-path time, roofline parallel time, and each mode's
  own sync term: levels × spin for p2p/syncfree, levels × barrier for
  the barrier baseline, supersteps × barrier for DAG partitions, sweep
  multiples for elastic), fit against ``BENCH_sched.json`` in
  *relative* error — ``lstsq(X / y, 1)`` — so the microsecond chain
  points weigh the same as the millisecond grids.
* **Backend** — scalar sweeps pay per entry, batched sweeps pay per
  level plus per entry; the crossover is the entries-per-level ratio.
  Fit from ``BENCH_kernels.json`` trisolve rows.
* **Width margin** — the diminishing-returns cutoff for batch width is
  noise-aware when the serve bench recorded per-repeat samples: the
  margin grows to twice the worst coefficient of variation, so a width
  step is only taken when its gain clears measurement noise.

The scheduler fit is the ROADMAP item-2 follow-on: superstep vs p2p vs
elastic is read off the level structure instead of a ``--scheduler``
knob.  Correctness on the bench grid is judged with 2% regret — a pick
is right if its *true* time is within 2% of the oracle best — because
p2p and syncfree are priced identically by the DES and several points
are genuine ties.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from .features import PatternFeatures, extract_features

__all__ = [
    "SCHEDULERS",
    "PREFERENCE",
    "WIDTHS",
    "SlaSpec",
    "TuneChoice",
    "TuneModel",
    "fit_model",
    "default_model",
    "results_dir",
]

SCHEDULERS = ("p2p", "barrier", "superstep", "syncfree", "elastic")
#: tie-break order for equal predictions: prefer the modes that are
#: exact and cheapest to plan
PREFERENCE = ("p2p", "superstep", "syncfree", "barrier", "elastic")
WIDTHS = (1, 2, 4, 8, 16, 32, 64)
#: staleness the elastic columns are fit against (the bench's middle arm)
ELASTIC_STALENESS = 4


@dataclass(frozen=True)
class SlaSpec:
    """Deadline budget, expressed as a multiple of the pattern's own
    single-request solve cost.

    A relative budget keeps the oracle and the model comparable: each
    side judges width feasibility against *its own* single-request
    estimate, so the choice reflects batching economics rather than
    absolute clock scale.
    """

    sla_class: str = "standard"
    budget_factor: float = 4.0

    _CLASS_BUDGETS = {"interactive": 2.0, "standard": 4.0, "batch": 16.0}

    @classmethod
    def from_class(cls, name):
        try:
            return cls(sla_class=name, budget_factor=cls._CLASS_BUDGETS[name])
        except KeyError:
            raise ValueError(
                f"unknown SLA class {name!r}; expected one of "
                f"{tuple(cls._CLASS_BUDGETS)}"
            ) from None


@dataclass(frozen=True)
class TuneChoice:
    """One recommendation — every field names an existing bit-identical path."""

    backend: str  # "scalar" | "batched"
    scheduler: str
    max_batch: int
    factor_tier: str  # "full" | "ilu0"
    predicted_solve_s: float  # picked scheduler, DES scale
    predicted_batch_s: float  # picked width, serve CostModel scale

    def as_dict(self):
        return {
            "backend": self.backend,
            "scheduler": self.scheduler,
            "max_batch": self.max_batch,
            "factor_tier": self.factor_tier,
            "predicted_solve_s": self.predicted_solve_s,
            "predicted_batch_s": self.predicted_batch_s,
        }


def _scheduler_columns(f: PatternFeatures, spec, p, sched):
    """Structural cost columns for one scheduler on one machine point."""
    spin = spec.spin_poll
    barrier = spec.barrier_base + spec.barrier_per_log2p * math.log2(max(2, p))
    serial = f.crit_flops / spec.flops_per_core
    par = f.total_flops / (p * spec.flops_per_core) + f.total_bytes / min(
        p * spec.single_thread_bw, spec.socket_bw * spec.n_sockets
    )
    if sched in ("p2p", "syncfree"):
        chain_frac = f.crit_flops / f.total_flops if f.total_flops else 0.0
        return [serial, par, f.n_levels * spin, chain_frac * f.n_levels * spin]
    if sched == "barrier":
        return [serial, par, f.n_levels * barrier]
    if sched == "superstep":
        return [serial, par, f.superstep_steps * barrier]
    if sched == "elastic":
        return [serial * f.elastic_sweeps, par * f.elastic_sweeps,
                f.elastic_sweeps * barrier]
    raise ValueError(f"unknown scheduler {sched!r}")


def _machine_presets(scale):
    from ..machine import gpulike, haswell, knl

    specs = {"haswell": haswell(), "knl": knl(), "gpulike": gpulike()}
    if scale is not None:
        specs = {k: v.scaled_overheads(scale) for k, v in specs.items()}
    return specs


@dataclass
class TuneModel:
    """Fitted predictor behind :meth:`recommend`; serializable, pure."""

    sched_coef: dict  # scheduler -> list of column weights
    backend_scalar_rate: float  # seconds per factor entry, scalar sweep
    backend_batched_coef: tuple  # (per-level, per-entry) seconds
    width_margin: float = 0.05
    overhead_scale: float | None = None  # machine overhead scale the fit used
    seed: int = 0
    meta: dict = field(default_factory=dict)

    # -- scheduler ----------------------------------------------------
    def predict_scheduler_times(self, features, machine, *, p=None):
        spec = self._resolve_machine(machine)
        if p is None:
            p = spec.n_sockets * spec.cores_per_socket
        return {
            s: float(np.dot(_scheduler_columns(features, spec, p, s), w))
            for s, w in self.sched_coef.items()
        }

    def pick_scheduler(self, features, machine, *, p=None):
        preds = self.predict_scheduler_times(features, machine, p=p)
        pick = min(preds, key=lambda k: (preds[k], PREFERENCE.index(k)))
        return pick, preds

    # -- backend ------------------------------------------------------
    def predict_backend_times(self, features):
        scalar = self.backend_scalar_rate * features.nnz
        w_level, w_nnz = self.backend_batched_coef
        batched = w_level * features.n_levels_lower + w_nnz * features.nnz
        return {"scalar": float(scalar), "batched": float(max(batched, 0.0))}

    def pick_backend(self, features):
        t = self.predict_backend_times(features)
        return ("batched" if t["batched"] < t["scalar"] else "scalar"), t

    # -- width / tier (serve CostModel economics) ---------------------
    def sync_points_for(self, features, scheduler):
        """Sync charge one preconditioner pass pays under ``scheduler``,
        read off the features (mirrors ``repro.sched.effective_sync_passes``
        as the serving layer prices it; elastic is approximated by its
        sweep multiple since the exact count needs the block schedule)."""
        if scheduler in ("p2p", "barrier"):
            return 2.0 * features.n_levels_lower
        if scheduler == "superstep":
            return float(features.superstep_steps)
        if scheduler == "syncfree":
            return 1.0
        if scheduler == "elastic":
            return float(features.n_levels * features.elastic_sweeps)
        raise ValueError(f"unknown scheduler {scheduler!r}")

    def batch_cost(self, features, scheduler, k, *, cost=None):
        """Serve-CostModel charge for one batch of ``k`` like requests."""
        cost = cost or self._serve_cost()
        return cost.solve_cost(
            features.n_levels_lower,
            features.nnz,
            cost.est_iters,
            cost.est_iters * int(k),
            sync_points=self.sync_points_for(features, scheduler),
        )

    def pick_width(self, features, scheduler, sla: SlaSpec):
        """Smallest width whose per-request cost is within ``width_margin``
        of the best feasible per-request cost.

        Feasibility: a request waits for its whole batch, so batch cost
        must fit the SLA budget (``budget_factor`` × the width-1 cost).
        Among feasible widths the *smallest* near-optimal one wins —
        wider batches add queueing delay the cost model does not see.
        """
        cost = self._serve_cost()
        c1 = self.batch_cost(features, scheduler, 1, cost=cost)
        budget = sla.budget_factor * c1
        per_req = {}
        for k in WIDTHS:
            ck = self.batch_cost(features, scheduler, k, cost=cost)
            if ck <= budget:
                per_req[k] = ck / k
        if not per_req:
            return 1, c1
        best = min(per_req.values())
        for k in WIDTHS:
            if k in per_req and per_req[k] <= (1.0 + self.width_margin) * best:
                return k, per_req[k] * k
        return 1, c1  # unreachable; keeps the contract total

    def pick_tier(self, features, sla: SlaSpec):
        """Demote to ILU(0) when a full-tier factor blows the SLA budget."""
        cost = self._serve_cost()
        c1 = self.batch_cost(features, "p2p", 1, cost=cost)
        full = cost.factor_cost(features.nnz, fill_level=1)
        return "full" if full <= sla.budget_factor * c1 else "ilu0"

    # -- the policy ---------------------------------------------------
    def recommend(self, pattern, machine, sla=None, *, p=None) -> TuneChoice:
        """Pure function of (features, machine, sla) → :class:`TuneChoice`.

        ``pattern`` may be a matrix or an already-extracted
        :class:`PatternFeatures`; ``machine`` a MachineSpec or a preset
        name; ``sla`` an :class:`SlaSpec` or an SLA class name.
        """
        features = self._resolve_features(pattern)
        if sla is None:
            sla = SlaSpec()
        elif isinstance(sla, str):
            sla = SlaSpec.from_class(sla)
        scheduler, sched_preds = self.pick_scheduler(features, machine, p=p)
        backend, _ = self.pick_backend(features)
        width, batch_s = self.pick_width(features, scheduler, sla)
        tier = self.pick_tier(features, sla)
        return TuneChoice(
            backend=backend,
            scheduler=scheduler,
            max_batch=width,
            factor_tier=tier,
            predicted_solve_s=sched_preds[scheduler],
            predicted_batch_s=batch_s,
        )

    def serve_scheduler(self, features):
        """Serving-loop scheduler override: ``"superstep"`` when the DAG
        partition pays fewer syncs than the default level-set charge,
        else ``None`` (keep the p2p default).

        Restricted to superstep deliberately: it is the one exact mode
        whose serve-side sync economy is a pure structural count of the
        cached plan (``n_steps``), so the override is reproducible from
        features alone and provably changes only the virtual-time
        charge, never the applied numerics.
        """
        if features.superstep_steps < 2 * features.n_levels_lower:
            return "superstep"
        return None

    # -- plumbing -----------------------------------------------------
    def _resolve_features(self, pattern):
        if isinstance(pattern, PatternFeatures):
            return pattern
        return extract_features(pattern)

    def _resolve_machine(self, machine):
        if isinstance(machine, str):
            try:
                return _machine_presets(self.overhead_scale)[machine]
            except KeyError:
                raise ValueError(
                    f"unknown machine preset {machine!r}; expected one of "
                    "('haswell', 'knl', 'gpulike') or a MachineSpec"
                ) from None
        return machine

    def _serve_cost(self):
        from ..serve.workers import CostModel

        return CostModel()

    # -- serialization ------------------------------------------------
    def to_dict(self):
        return {
            "schema": "repro.tune.model/v1",
            "seed": self.seed,
            "overhead_scale": self.overhead_scale,
            "width_margin": self.width_margin,
            "sched_coef": {k: list(map(float, v)) for k, v in self.sched_coef.items()},
            "backend": {
                "scalar_rate": self.backend_scalar_rate,
                "batched_coef": list(self.backend_batched_coef),
            },
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, doc):
        if doc.get("schema") != "repro.tune.model/v1":
            raise ValueError(f"unexpected model schema {doc.get('schema')!r}")
        return cls(
            sched_coef={k: [float(x) for x in v] for k, v in doc["sched_coef"].items()},
            backend_scalar_rate=float(doc["backend"]["scalar_rate"]),
            backend_batched_coef=tuple(float(x) for x in doc["backend"]["batched_coef"]),
            width_margin=float(doc.get("width_margin", 0.05)),
            overhead_scale=doc.get("overhead_scale"),
            seed=int(doc.get("seed", 0)),
            meta=doc.get("meta", {}),
        )


# ----------------------------------------------------------------------
# fitting
# ----------------------------------------------------------------------
def _fit_schedulers(sched_doc):
    """Per-scheduler relative-error least squares over the crossover grid."""
    from .shapes import bench_shape

    scale = sched_doc.get("meta", {}).get("scale")
    specs = _machine_presets(scale)
    points = sched_doc["points"]

    shapes = {}
    rows = []
    for pt in points:
        name = pt["shape"]
        if name not in shapes:
            shapes[name] = bench_shape(name)
        f = extract_features(
            shapes[name], n_threads=pt["p"], staleness=ELASTIC_STALENESS
        )
        rows.append((pt, f))

    coef = {}
    residuals = {}
    for sched in SCHEDULERS:
        X, y = [], []
        for pt, f in rows:
            t = pt["times"].get(
                f"elastic-s{ELASTIC_STALENESS}" if sched == "elastic" else sched
            )
            if t is None:
                continue
            X.append(_scheduler_columns(f, specs[pt["machine"]], pt["p"], sched))
            y.append(t)
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        # relative-error least squares: solve (X / y) w ≈ 1 so every
        # grid point counts equally regardless of its absolute scale
        w, *_ = np.linalg.lstsq(X / y[:, None], np.ones(len(y)), rcond=None)
        coef[sched] = [float(c) for c in w]
        rel = np.abs(X @ w - y) / y
        residuals[sched] = {
            "max_rel": float(rel.max()),
            "mean_rel": float(rel.mean()),
        }
    return coef, scale, residuals


def _fit_backend(kernels_doc):
    """Segmented backend fit: scalar per-entry rate vs batched per-level
    + per-entry rates, from the trisolve rows of ``BENCH_kernels.json``.

    Falls back to rates distilled from the same committed data when the
    document is absent, so a model is always constructible.
    """
    entries = [
        e
        for e in (kernels_doc or {}).get("entries", [])
        if "scalar_s" in e and "batched_s" in e and "n_levels" in e
    ]
    if len(entries) >= 2:
        scalar_rate = float(
            np.mean([e["scalar_s"] / e["nnz"] for e in entries])
        )
        X = np.asarray([[e["n_levels"], e["nnz"]] for e in entries], dtype=np.float64)
        y = np.asarray([e["batched_s"] for e in entries], dtype=np.float64)
        w, *_ = np.linalg.lstsq(X, y, rcond=None)
        batched = (float(w[0]), float(max(w[1], 0.0)))
    else:
        scalar_rate = 1.1e-6
        batched = (1.2e-5, 2.5e-9)
    return scalar_rate, batched


def _calibrate_width_margin(serve_doc, base=0.05):
    """Noise-aware diminishing-returns margin from serve speedup samples.

    When the serve bench recorded per-repeat timing samples (see
    ``bench_util.timeit_best``), the margin widens to twice the worst
    coefficient of variation: a wider batch must beat the narrower one
    by more than the measurement noise to be chosen.
    """
    margin = base
    speedup = (serve_doc or {}).get("speedup", {})
    records = speedup.values() if isinstance(speedup, dict) else speedup
    for rec in records:
        if not isinstance(rec, dict):
            continue
        for key in ("batched_samples", "sequential_samples"):
            samples = rec.get(key)
            if samples and len(samples) >= 2:
                s = np.asarray(samples, dtype=np.float64)
                mean = float(s.mean())
                if mean > 0:
                    margin = max(margin, 2.0 * float(s.std()) / mean)
    return float(min(margin, 0.5))


def fit_model(sched_doc, kernels_doc=None, serve_doc=None, *, seed=0) -> TuneModel:
    """Fit a :class:`TuneModel` from the committed bench documents.

    Deterministic: the fit is closed-form least squares on fixed
    inputs; ``seed`` is recorded so two fits are comparable by
    provenance, and a re-fit from the same JSON is bit-identical.
    """
    coef, scale, residuals = _fit_schedulers(sched_doc)
    scalar_rate, batched = _fit_backend(kernels_doc)
    margin = _calibrate_width_margin(serve_doc)
    meta = {"n_points": len(sched_doc["points"]), "sched_residuals": residuals}
    if serve_doc:
        obs = serve_doc.get("metrics", {}).get("metrics", {})
        observed = {}
        for key in ("serve.batch_size", "serve.latency"):
            if key in obs and isinstance(obs[key], dict):
                observed[key] = {
                    k: obs[key][k] for k in ("mean", "p50") if k in obs[key]
                }
        if observed:
            meta["observed"] = observed
    return TuneModel(
        sched_coef=coef,
        backend_scalar_rate=scalar_rate,
        backend_batched_coef=batched,
        width_margin=margin,
        overhead_scale=scale,
        seed=seed,
        meta=meta,
    )


def results_dir():
    """The committed bench-results directory (repo layout relative to here)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(
        os.path.join(here, "..", "..", "..", "benchmarks", "results")
    )


def _load_json(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def default_model(results=None, *, seed=0) -> TuneModel:
    """Fit from the committed ``benchmarks/results/BENCH_*.json``."""
    results = results or results_dir()
    sched_doc = _load_json(os.path.join(results, "BENCH_sched.json"))
    if sched_doc is None:
        raise FileNotFoundError(
            f"no BENCH_sched.json under {results}; run benchmarks/bench_sched.py first"
        )
    return fit_model(
        sched_doc,
        _load_json(os.path.join(results, "BENCH_kernels.json")),
        _load_json(os.path.join(results, "BENCH_serve.json")),
        seed=seed,
    )
