"""Kernel dispatch registry: one name, several interchangeable backends.

The hot numeric paths (triangular sweeps, the upper-stage DES) each
exist in two implementations that must agree bit-for-bit:

* ``"scalar"`` — the per-row reference, written for auditability; the
  accumulation order is the contract every other backend must honor.
* ``"batched"`` — the level-batched NumPy backend: all rows of a level
  set processed in one gather / multiply / segment-reduce pass.

``get_kernel(name, backend=...)`` resolves an implementation;
``register_kernel`` is the decorator backends use to sign up.  The
default backend per kernel can be switched globally (e.g. to force the
scalar path while bisecting a numerical discrepancy) with
``set_default_backend``.
"""

from __future__ import annotations

from ..obs import spans as _spans

__all__ = [
    "register_kernel",
    "get_kernel",
    "available_backends",
    "available_kernels",
    "set_default_backend",
    "get_default_backend",
    "set_kernel_validator",
    "get_kernel_validator",
]

_REGISTRY: dict[str, dict[str, object]] = {}
_DEFAULT: dict[str, str] = {}
_VALIDATOR = None  # debug hook: fn(name, backend, args, kwargs) before dispatch


def register_kernel(name, backend, *, default=False):
    """Decorator registering ``fn`` as ``name``'s ``backend`` implementation.

    The first backend registered for a name becomes its default unless a
    later registration passes ``default=True``.
    """

    def deco(fn):
        impls = _REGISTRY.setdefault(name, {})
        if backend in impls:
            raise ValueError(f"kernel {name!r} already has a {backend!r} backend")
        impls[backend] = fn
        if default or name not in _DEFAULT:
            _DEFAULT[name] = backend
        return fn

    return deco


def get_kernel(name, backend=None):
    """Resolve a kernel implementation (default backend when unspecified).

    With neither the debug validator nor span tracing active the raw
    function is returned — dispatch costs nothing.  When
    :mod:`repro.obs` tracing is enabled at resolve time, the call is
    wrapped in a ``kernel.<name>`` span tagged with the backend (hot
    paths resolve per apply, so enabling tracing before a run
    instruments every dispatch).  Spans only read the clock; kernel
    results are bit-identical with tracing on or off.
    """
    impls = _REGISTRY.get(name)
    if impls is None:
        raise KeyError(
            f"unknown kernel {name!r}; known: {sorted(_REGISTRY)}"
        )
    backend = backend or _DEFAULT[name]
    try:
        fn = impls[backend]
    except KeyError:
        raise KeyError(
            f"kernel {name!r} has no {backend!r} backend; "
            f"available: {sorted(impls)}"
        ) from None
    if _VALIDATOR is None and not _spans.enabled():
        return fn

    def instrumented(*args, **kwargs):
        if _VALIDATOR is not None:
            _VALIDATOR(name, backend, args, kwargs)
        with _spans.span(f"kernel.{name}", cat="kernel", backend=backend):
            return fn(*args, **kwargs)

    instrumented.__wrapped__ = fn
    instrumented.__name__ = getattr(fn, "__name__", name)
    return instrumented


def available_backends(name):
    """Backends registered for ``name`` (sorted)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown kernel {name!r}")
    return sorted(_REGISTRY[name])


def available_kernels():
    """All registered kernel names (sorted)."""
    return sorted(_REGISTRY)


def set_default_backend(name, backend):
    """Globally switch which backend ``get_kernel(name)`` resolves to."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown kernel {name!r}")
    if backend not in _REGISTRY[name]:
        raise KeyError(f"kernel {name!r} has no {backend!r} backend")
    _DEFAULT[name] = backend


def get_default_backend(name):
    if name not in _DEFAULT:
        raise KeyError(f"unknown kernel {name!r}")
    return _DEFAULT[name]


def set_kernel_validator(fn):
    """Install (or clear, with ``None``) the dispatch-time debug validator.

    When set, every implementation resolved by :func:`get_kernel` is
    wrapped so ``fn(name, backend, args, kwargs)`` runs before the
    kernel body — the hook :func:`repro.verify.enable_debug_validation`
    uses to validate matrix/plan arguments on the hot path.  Costs
    nothing while unset (the raw function is returned).
    """
    global _VALIDATOR
    _VALIDATOR = fn


def get_kernel_validator():
    return _VALIDATOR
