"""Triangular-sweep kernels: scalar reference and level-batched backend.

Both backends implement the same contract on the combined L\\U factor:

* ``trisolve_lower``: solve ``L y = b`` with unit diagonal, reading the
  strict-lower entries of each row in ascending column order;
* ``trisolve_upper``: solve ``U x = y`` reading the strict-upper entries
  in ascending column order, then dividing by the diagonal.

The per-row accumulation is ``s = 0; s += data[k] * sol[col[k]]`` in
entry order followed by a single ``rhs - s`` (and ``/ diag`` for the
upper sweep).  The batched backend reproduces this *bit-for-bit*: rows
of a level are independent, so each level is one gather/multiply pass,
and ``np.bincount`` performs the per-row segment sums strictly
sequentially in the same entry order.  Tests assert exact equality, not
closeness.

The ``*_multi`` kernels extend the contract to a 2-D right-hand side
``B`` of shape ``(n, k)`` — the multi-RHS sweeps behind the serving
layer's micro-batches (:mod:`repro.serve`).  Column ``j`` of the result
is bit-identical to the 1-RHS sweep on ``B[:, j]``: the batched backend
flattens the per-level segment sum to bins ``(local_row * k + column)``,
so each ``(row, column)`` bin accumulates its entries in exactly the
ascending entry order of the 1-RHS ``np.bincount`` — same products,
same addition order, same floats.  What batching buys is amortization:
the per-level gather/reduce overhead (the dominant cost on the many
small levels of a triangular schedule) is paid once per level instead
of once per level *per request*.
"""

from __future__ import annotations

import numpy as np

from .cache import cached_analysis
from .registry import register_kernel

__all__ = []  # access via repro.kernels.get_kernel


# ----------------------------------------------------------------------
# scalar reference
# ----------------------------------------------------------------------
@register_kernel("trisolve_lower", "scalar")
def trisolve_lower_scalar(F, b, plan=None):
    """Forward solve ``L y = b`` (unit diagonal), one row at a time."""
    b = np.asarray(b, dtype=np.float64)
    n = F.n_rows
    y = np.empty(n)
    indptr, indices, data = F.indptr, F.indices, F.data
    for i in range(n):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        cols = indices[lo:hi]
        cut = int(np.searchsorted(cols, i))
        s = 0.0
        for kk in range(lo, lo + cut):
            s += data[kk] * y[indices[kk]]
        y[i] = b[i] - s
    return y


@register_kernel("trisolve_upper", "scalar")
def trisolve_upper_scalar(F, y, plan=None):
    """Backward solve ``U x = y``, one row at a time."""
    y = np.asarray(y, dtype=np.float64)
    n = F.n_rows
    x = np.empty(n)
    indptr, indices, data = F.indptr, F.indices, F.data
    for i in range(n - 1, -1, -1):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        cols = indices[lo:hi]
        cut = int(np.searchsorted(cols, i))
        if cut >= hi - lo or cols[cut] != i:
            raise ValueError(f"missing diagonal in factored row {i}")
        s = 0.0
        for kk in range(lo + cut + 1, hi):
            s += data[kk] * x[indices[kk]]
        x[i] = (y[i] - s) / data[lo + cut]
    return x


# ----------------------------------------------------------------------
# level-batched backend
# ----------------------------------------------------------------------
def _resolve_plan(F, part, plan):
    if plan is None:
        plan = cached_analysis(F).plan(part)
    elif plan.part != part:
        raise ValueError(f"plan is for part {plan.part!r}, kernel needs {part!r}")
    return plan


@register_kernel("trisolve_lower", "batched", default=True)
def trisolve_lower_batched(F, b, plan=None):
    """Forward solve, one gather/multiply/segment-reduce per level."""
    plan = _resolve_plan(F, "lower", plan)
    b = np.asarray(b, dtype=np.float64)
    data, indices = F.data, F.indices
    y = np.empty(plan.n)
    rows, level_ptr = plan.rows, plan.level_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.lev_ent_ptr
    for l in range(plan.n_levels):
        rlo, rhi = level_ptr[l], level_ptr[l + 1]
        rows_l = rows[rlo:rhi]
        elo, ehi = eptr[l], eptr[l + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents] * y[indices[ents]]
            s = np.bincount(ent_local[elo:ehi], weights=prod, minlength=rhi - rlo)
        else:
            s = 0.0
        y[rows_l] = b[rows_l] - s
    return y


@register_kernel("trisolve_upper", "batched", default=True)
def trisolve_upper_batched(F, y, plan=None):
    """Backward solve, one gather/multiply/segment-reduce per level."""
    plan = _resolve_plan(F, "upper", plan)
    y = np.asarray(y, dtype=np.float64)
    data, indices = F.data, F.indices
    x = np.empty(plan.n)
    rows, level_ptr = plan.rows, plan.level_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.lev_ent_ptr
    diag_idx = plan.diag_idx
    for l in range(plan.n_levels):
        rlo, rhi = level_ptr[l], level_ptr[l + 1]
        rows_l = rows[rlo:rhi]
        elo, ehi = eptr[l], eptr[l + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents] * x[indices[ents]]
            s = np.bincount(ent_local[elo:ehi], weights=prod, minlength=rhi - rlo)
        else:
            s = 0.0
        x[rows_l] = (y[rows_l] - s) / data[diag_idx[rows_l]]
    return x


# ----------------------------------------------------------------------
# multi-RHS sweeps
# ----------------------------------------------------------------------
def _as_block(B):
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"multi-RHS kernels take a 2-D block, got shape {B.shape}")
    return B


@register_kernel("trisolve_lower_multi", "scalar")
def trisolve_lower_multi_scalar(F, B, plan=None):
    """Forward solve ``L Y = B``, one column at a time (reference)."""
    B = _as_block(B)
    cols = [trisolve_lower_scalar(F, B[:, j], plan=plan) for j in range(B.shape[1])]
    return np.stack(cols, axis=1) if cols else np.empty((F.n_rows, 0))


@register_kernel("trisolve_upper_multi", "scalar")
def trisolve_upper_multi_scalar(F, Y, plan=None):
    """Backward solve ``U X = Y``, one column at a time (reference)."""
    Y = _as_block(Y)
    cols = [trisolve_upper_scalar(F, Y[:, j], plan=plan) for j in range(Y.shape[1])]
    return np.stack(cols, axis=1) if cols else np.empty((F.n_rows, 0))


@register_kernel("trisolve_lower_multi", "batched", default=True)
def trisolve_lower_multi_batched(F, B, plan=None):
    """Forward solve ``L Y = B``: one gather/reduce per level for all columns.

    Per column bit-identical to :func:`trisolve_lower_batched` (and so
    to the scalar reference): the flattened bins ``local_row * k + j``
    keep each column's per-row accumulation in the same ascending entry
    order as the 1-RHS segment sum.
    """
    plan = _resolve_plan(F, "lower", plan)
    B = _as_block(B)
    k = B.shape[1]
    if k == 0:
        return np.empty((plan.n, 0))
    data, indices = F.data, F.indices
    Y = np.empty((plan.n, k))
    rows, level_ptr = plan.rows, plan.level_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.lev_ent_ptr
    col_ix = np.arange(k, dtype=np.int64)
    for l in range(plan.n_levels):
        rlo, rhi = level_ptr[l], level_ptr[l + 1]
        rows_l = rows[rlo:rhi]
        elo, ehi = eptr[l], eptr[l + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents, None] * Y[indices[ents], :]
            bins = (ent_local[elo:ehi, None] * k + col_ix).ravel()
            s = np.bincount(
                bins, weights=prod.ravel(), minlength=(rhi - rlo) * k
            ).reshape(rhi - rlo, k)
        else:
            s = 0.0
        Y[rows_l, :] = B[rows_l, :] - s
    return Y


@register_kernel("trisolve_upper_multi", "batched", default=True)
def trisolve_upper_multi_batched(F, Y, plan=None):
    """Backward solve ``U X = Y`` for all columns at once (see lower)."""
    plan = _resolve_plan(F, "upper", plan)
    Y = _as_block(Y)
    k = Y.shape[1]
    if k == 0:
        return np.empty((plan.n, 0))
    data, indices = F.data, F.indices
    X = np.empty((plan.n, k))
    rows, level_ptr = plan.rows, plan.level_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.lev_ent_ptr
    diag_idx = plan.diag_idx
    col_ix = np.arange(k, dtype=np.int64)
    for l in range(plan.n_levels):
        rlo, rhi = level_ptr[l], level_ptr[l + 1]
        rows_l = rows[rlo:rhi]
        elo, ehi = eptr[l], eptr[l + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents, None] * X[indices[ents], :]
            bins = (ent_local[elo:ehi, None] * k + col_ix).ravel()
            s = np.bincount(
                bins, weights=prod.ravel(), minlength=(rhi - rlo) * k
            ).reshape(rhi - rlo, k)
        else:
            s = 0.0
        X[rows_l, :] = (Y[rows_l, :] - s) / data[diag_idx[rows_l], None]
    return X


# ----------------------------------------------------------------------
# superstep sweeps (repro.sched DAG-partition plans)
# ----------------------------------------------------------------------
def _resolve_superstep_plan(F, part, plan, n_threads):
    if plan is None:
        plan = cached_analysis(F).superstep_plan(part, n_threads=n_threads)
    elif plan.part != part:
        raise ValueError(f"plan is for part {plan.part!r}, kernel needs {part!r}")
    return plan


@register_kernel("trisolve_lower_superstep", "scalar")
def trisolve_lower_superstep_scalar(F, b, plan=None, *, n_threads=8):
    """Forward solve in superstep execution order, one row at a time.

    The superstep plan's ``rows`` is a valid topological order, and each
    row's accumulation is the same ascending-entry sum as the serial
    reference — so the result is bit-identical to it.
    """
    plan = _resolve_superstep_plan(F, "lower", plan, n_threads)
    b = np.asarray(b, dtype=np.float64)
    y = np.empty(plan.n)
    indptr, indices, data = F.indptr, F.indices, F.data
    for r in plan.rows:
        r = int(r)
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        cols = indices[lo:hi]
        cut = int(np.searchsorted(cols, r))
        s = 0.0
        for kk in range(lo, lo + cut):
            s += data[kk] * y[indices[kk]]
        y[r] = b[r] - s
    return y


@register_kernel("trisolve_upper_superstep", "scalar")
def trisolve_upper_superstep_scalar(F, y, plan=None, *, n_threads=8):
    """Backward solve in superstep execution order (scalar reference)."""
    plan = _resolve_superstep_plan(F, "upper", plan, n_threads)
    y = np.asarray(y, dtype=np.float64)
    x = np.empty(plan.n)
    indptr, indices, data = F.indptr, F.indices, F.data
    for r in plan.rows:
        r = int(r)
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        cols = indices[lo:hi]
        cut = int(np.searchsorted(cols, r))
        if cut >= hi - lo or cols[cut] != r:
            raise ValueError(f"missing diagonal in factored row {r}")
        s = 0.0
        for kk in range(lo + cut + 1, hi):
            s += data[kk] * x[indices[kk]]
        x[r] = (y[r] - s) / data[lo + cut]
    return x


@register_kernel("trisolve_lower_superstep", "batched", default=True)
def trisolve_lower_superstep_batched(F, b, plan=None, *, n_threads=8):
    """Forward solve, one gather/reduce per (superstep, level) segment.

    Segments group rows of one level inside one superstep, so every
    dependency of a segment's rows is already final when the segment
    runs; ``np.bincount`` keeps each row's ascending entry order, hence
    bit-identity with the serial sweep.
    """
    plan = _resolve_superstep_plan(F, "lower", plan, n_threads)
    b = np.asarray(b, dtype=np.float64)
    data, indices = F.data, F.indices
    y = np.empty(plan.n)
    seg_rows, seg_ptr = plan.seg_rows, plan.seg_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.seg_ent_ptr
    for g in range(plan.n_segments):
        rlo, rhi = seg_ptr[g], seg_ptr[g + 1]
        rows_g = seg_rows[rlo:rhi]
        elo, ehi = eptr[g], eptr[g + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents] * y[indices[ents]]
            s = np.bincount(ent_local[elo:ehi], weights=prod, minlength=rhi - rlo)
        else:
            s = 0.0
        y[rows_g] = b[rows_g] - s
    return y


@register_kernel("trisolve_upper_superstep", "batched", default=True)
def trisolve_upper_superstep_batched(F, y, plan=None, *, n_threads=8):
    """Backward solve, one gather/reduce per (superstep, level) segment."""
    plan = _resolve_superstep_plan(F, "upper", plan, n_threads)
    y = np.asarray(y, dtype=np.float64)
    data, indices = F.data, F.indices
    x = np.empty(plan.n)
    seg_rows, seg_ptr = plan.seg_rows, plan.seg_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.seg_ent_ptr
    diag_idx = plan.diag_idx
    for g in range(plan.n_segments):
        rlo, rhi = seg_ptr[g], seg_ptr[g + 1]
        rows_g = seg_rows[rlo:rhi]
        elo, ehi = eptr[g], eptr[g + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents] * x[indices[ents]]
            s = np.bincount(ent_local[elo:ehi], weights=prod, minlength=rhi - rlo)
        else:
            s = 0.0
        x[rows_g] = (y[rows_g] - s) / data[diag_idx[rows_g]]
    return x


# ----------------------------------------------------------------------
# elastic (stale-synchronous) sweeps — thin dispatch shims
# ----------------------------------------------------------------------
@register_kernel("trisolve_lower_elastic", "batched", default=True)
def trisolve_lower_elastic_batched(
    F, b, sched=None, *, staleness=4, tol=0.0, max_sweeps=128
):
    """Forward solve via stale-synchronous correction sweeps."""
    from ..sched.elastic import elastic_solve_part

    if sched is None:
        sched = cached_analysis(F).elastic_schedule("lower", staleness=staleness)
    return elastic_solve_part(F, b, sched, tol=tol, max_sweeps=max_sweeps)


@register_kernel("trisolve_lower_elastic", "scalar")
def trisolve_lower_elastic_scalar(
    F, b, sched=None, *, staleness=4, tol=0.0, max_sweeps=128
):
    """Forward stale-synchronous solve, per-row reference backend."""
    from ..sched.elastic import elastic_solve_part

    if sched is None:
        sched = cached_analysis(F).elastic_schedule("lower", staleness=staleness)
    return elastic_solve_part(
        F, b, sched, tol=tol, max_sweeps=max_sweeps, backend="scalar"
    )


@register_kernel("trisolve_upper_elastic", "batched", default=True)
def trisolve_upper_elastic_batched(
    F, y, sched=None, *, staleness=4, tol=0.0, max_sweeps=128
):
    """Backward solve via stale-synchronous correction sweeps."""
    from ..sched.elastic import elastic_solve_part

    if sched is None:
        sched = cached_analysis(F).elastic_schedule("upper", staleness=staleness)
    return elastic_solve_part(F, y, sched, tol=tol, max_sweeps=max_sweeps)


@register_kernel("trisolve_upper_elastic", "scalar")
def trisolve_upper_elastic_scalar(
    F, y, sched=None, *, staleness=4, tol=0.0, max_sweeps=128
):
    """Backward stale-synchronous solve, per-row reference backend."""
    from ..sched.elastic import elastic_solve_part

    if sched is None:
        sched = cached_analysis(F).elastic_schedule("upper", staleness=staleness)
    return elastic_solve_part(
        F, y, sched, tol=tol, max_sweeps=max_sweeps, backend="scalar"
    )
