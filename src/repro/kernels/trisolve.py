"""Triangular-sweep kernels: scalar reference and level-batched backend.

Both backends implement the same contract on the combined L\\U factor:

* ``trisolve_lower``: solve ``L y = b`` with unit diagonal, reading the
  strict-lower entries of each row in ascending column order;
* ``trisolve_upper``: solve ``U x = y`` reading the strict-upper entries
  in ascending column order, then dividing by the diagonal.

The per-row accumulation is ``s = 0; s += data[k] * sol[col[k]]`` in
entry order followed by a single ``rhs - s`` (and ``/ diag`` for the
upper sweep).  The batched backend reproduces this *bit-for-bit*: rows
of a level are independent, so each level is one gather/multiply pass,
and ``np.bincount`` performs the per-row segment sums strictly
sequentially in the same entry order.  Tests assert exact equality, not
closeness.
"""

from __future__ import annotations

import numpy as np

from .cache import cached_analysis
from .registry import register_kernel

__all__ = []  # access via repro.kernels.get_kernel


# ----------------------------------------------------------------------
# scalar reference
# ----------------------------------------------------------------------
@register_kernel("trisolve_lower", "scalar")
def trisolve_lower_scalar(F, b, plan=None):
    """Forward solve ``L y = b`` (unit diagonal), one row at a time."""
    b = np.asarray(b, dtype=np.float64)
    n = F.n_rows
    y = np.empty(n)
    indptr, indices, data = F.indptr, F.indices, F.data
    for i in range(n):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        cols = indices[lo:hi]
        cut = int(np.searchsorted(cols, i))
        s = 0.0
        for kk in range(lo, lo + cut):
            s += data[kk] * y[indices[kk]]
        y[i] = b[i] - s
    return y


@register_kernel("trisolve_upper", "scalar")
def trisolve_upper_scalar(F, y, plan=None):
    """Backward solve ``U x = y``, one row at a time."""
    y = np.asarray(y, dtype=np.float64)
    n = F.n_rows
    x = np.empty(n)
    indptr, indices, data = F.indptr, F.indices, F.data
    for i in range(n - 1, -1, -1):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        cols = indices[lo:hi]
        cut = int(np.searchsorted(cols, i))
        if cut >= hi - lo or cols[cut] != i:
            raise ValueError(f"missing diagonal in factored row {i}")
        s = 0.0
        for kk in range(lo + cut + 1, hi):
            s += data[kk] * x[indices[kk]]
        x[i] = (y[i] - s) / data[lo + cut]
    return x


# ----------------------------------------------------------------------
# level-batched backend
# ----------------------------------------------------------------------
def _resolve_plan(F, part, plan):
    if plan is None:
        plan = cached_analysis(F).plan(part)
    elif plan.part != part:
        raise ValueError(f"plan is for part {plan.part!r}, kernel needs {part!r}")
    return plan


@register_kernel("trisolve_lower", "batched", default=True)
def trisolve_lower_batched(F, b, plan=None):
    """Forward solve, one gather/multiply/segment-reduce per level."""
    plan = _resolve_plan(F, "lower", plan)
    b = np.asarray(b, dtype=np.float64)
    data, indices = F.data, F.indices
    y = np.empty(plan.n)
    rows, level_ptr = plan.rows, plan.level_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.lev_ent_ptr
    for l in range(plan.n_levels):
        rlo, rhi = level_ptr[l], level_ptr[l + 1]
        rows_l = rows[rlo:rhi]
        elo, ehi = eptr[l], eptr[l + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents] * y[indices[ents]]
            s = np.bincount(ent_local[elo:ehi], weights=prod, minlength=rhi - rlo)
        else:
            s = 0.0
        y[rows_l] = b[rows_l] - s
    return y


@register_kernel("trisolve_upper", "batched", default=True)
def trisolve_upper_batched(F, y, plan=None):
    """Backward solve, one gather/multiply/segment-reduce per level."""
    plan = _resolve_plan(F, "upper", plan)
    y = np.asarray(y, dtype=np.float64)
    data, indices = F.data, F.indices
    x = np.empty(plan.n)
    rows, level_ptr = plan.rows, plan.level_ptr
    ent_idx, ent_local, eptr = plan.ent_idx, plan.ent_local, plan.lev_ent_ptr
    diag_idx = plan.diag_idx
    for l in range(plan.n_levels):
        rlo, rhi = level_ptr[l], level_ptr[l + 1]
        rows_l = rows[rlo:rhi]
        elo, ehi = eptr[l], eptr[l + 1]
        if ehi > elo:
            ents = ent_idx[elo:ehi]
            prod = data[ents] * x[indices[ents]]
            s = np.bincount(ent_local[elo:ehi], weights=prod, minlength=rhi - rlo)
        else:
            s = 0.0
        x[rows_l] = (y[rows_l] - s) / data[diag_idx[rows_l]]
    return x
