"""Pattern-keyed symbolic cache.

An ILU-preconditioned Krylov run re-analyzes the same sparsity pattern
over and over: every factor/solve cycle needs diagonal positions, level
sets, level-ordered permutations, batched sweep plans, and row-cost
arrays — all functions of ``(indptr, indices)`` alone, never of the
values.  This module fingerprints the pattern and memoizes one
:class:`SymbolicAnalysis` per fingerprint, so repeated cycles (GMRES
restarts, CG re-preconditioning, parameter sweeps over ``τ``) pay the
symbolic cost once.

The fingerprint hashes the structure bytes, so any pattern mutation —
a different fill level, a pruned entry, a permutation — produces a new
key and therefore a fresh analysis; stale reuse is structurally
impossible.  Cached analyses copy the pattern arrays, so later in-place
edits of the source matrix cannot corrupt an existing entry.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..obs import spans as _spans
from ..sparse.csr import CSRMatrix
from .plans import (
    backward_level_sets,
    build_trisolve_plan,
    diag_positions,
    forward_level_sets,
)

__all__ = [
    "pattern_fingerprint",
    "matrix_fingerprint",
    "SymbolicAnalysis",
    "SymbolicCache",
    "default_cache",
    "cached_analysis",
    "clear_default_cache",
    "configure_default_cache",
    "set_validation_hook",
    "freeze_product",
]

_VALIDATION_HOOK = None  # debug hook: fn(analysis) on every cache lookup


def set_validation_hook(fn):
    """Install (or clear, with ``None``) the lookup-time debug validator.

    When set, every :meth:`SymbolicCache.analysis` result is passed to
    ``fn(analysis)`` before being returned — the hook
    :func:`repro.verify.enable_debug_validation` uses to re-validate
    cached entries (structure + frozen arrays) on each lookup.
    """
    global _VALIDATION_HOOK
    _VALIDATION_HOOK = fn


def freeze_product(obj):
    """Mark a symbolic product's arrays read-only, recursively.

    Cached products are shared across factor/solve cycles and threads;
    freezing (``ndarray.flags.writeable = False``) turns an accidental
    in-place mutation into an immediate ``ValueError`` at the write
    site instead of silent corruption of every other consumer.  Handles
    bare arrays, tuples of products, and the dataclass products
    (:class:`~repro.ordering.levelsets.LevelSets`,
    :class:`~repro.kernels.plans.TriSolvePlan`).
    """
    if isinstance(obj, np.ndarray):
        obj.flags.writeable = False
        return obj
    if isinstance(obj, tuple):
        return tuple(freeze_product(x) for x in obj)
    for field in ("level_of", "level_ptr", "rows", "ent_idx", "ent_local",
                  "lev_ent_ptr", "diag_idx",
                  # superstep plans (repro.sched)
                  "step_ptr", "thread_ptr", "thread_of", "step_of",
                  "step_level_ptr", "seg_rows", "seg_ptr", "seg_ent_ptr",
                  # elastic schedules (repro.sched)
                  "block_of", "final_sweep", "ent_ptr"):
        arr = getattr(obj, field, None)
        if isinstance(arr, np.ndarray):
            arr.flags.writeable = False
    return obj


def pattern_fingerprint(M) -> str:
    """Hex digest of ``(shape, indptr, indices)`` — the symbolic identity."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray([M.n_rows, M.n_cols], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(M.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(M.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def matrix_fingerprint(M) -> str:
    """Hex digest of pattern *and* values — the numeric identity.

    Two matrices on the same stencil (e.g. a diffusion and a convection
    problem on one grid) share a :func:`pattern_fingerprint` but must
    never share a *factor*; use this digest to key caches whose entries
    depend on the values, not just the structure.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(pattern_fingerprint(M).encode())
    h.update(np.ascontiguousarray(M.data, dtype=np.float64).tobytes())
    return h.hexdigest()


class SymbolicAnalysis:
    """Memoized symbolic products of one sparsity pattern.

    Every accessor computes on first use and returns the cached array
    afterwards; ``compute_counts`` records how many times each product
    was actually built (the cache tests assert a hit never rebuilds).
    """

    def __init__(self, M, fingerprint=None):
        self.fingerprint = fingerprint or pattern_fingerprint(M)
        self.n_rows = M.n_rows
        self.n_cols = M.n_cols
        # own copies: in-place edits of the source matrix must not
        # corrupt an entry already keyed by the old fingerprint
        self._pattern = CSRMatrix(
            M.n_rows,
            M.n_cols,
            np.array(M.indptr, dtype=np.int64, copy=True),
            np.array(M.indices, dtype=np.int64, copy=True),
            np.ones(int(M.indptr[-1])),
            sort=False,
            check=False,
        )
        # frozen: cached pattern arrays are shared read-only views too
        for arr in (self._pattern.indptr, self._pattern.indices, self._pattern.data):
            arr.flags.writeable = False
        self._memo = {}
        self.compute_counts = {}
        self._lock = threading.Lock()  # verify: ok[JAV002] shared with the threaded runtime

    @property
    def nnz(self):
        return self._pattern.nnz

    def _get(self, key, builder):
        # reentrant use (plan() builds via levels()+diag_pos()) means the
        # lock cannot be held across builder(), only around the memo dict
        with self._lock:
            hit = self._memo.get(key)
        if hit is not None:
            return hit
        built = freeze_product(builder())
        with self._lock:
            if key not in self._memo:
                self._memo[key] = built
                self.compute_counts[key] = self.compute_counts.get(key, 0) + 1
            return self._memo[key]

    def diag_pos(self, *, message="missing diagonal in factored row {row}"):
        """Storage index of every diagonal entry (whole-matrix searchsorted)."""
        return self._get("diag_pos", lambda: diag_positions(self._pattern, message=message))

    def levels(self, part):
        """Level sets of the forward ('lower') or backward ('upper') sweep."""
        if part == "lower":
            return self._get("levels_lower", lambda: forward_level_sets(self._pattern))
        if part == "upper":
            return self._get("levels_upper", lambda: backward_level_sets(self._pattern))
        raise ValueError("part must be 'lower' or 'upper'")

    def level_order(self, part):
        """The level-ordered permutation (rows grouped by level)."""
        return self.levels(part).rows

    def plan(self, part):
        """The batched sweep plan for ``part`` (reuses levels + diag_pos)."""
        key = f"plan_{part}"
        return self._get(
            key,
            lambda: build_trisolve_plan(
                self._pattern,
                part,
                levels=self.levels(part),
                diag_idx=self.diag_pos() if part == "upper" else None,
            ),
        )

    def superstep_plan(self, part, *, n_threads, opts=None):
        """The DAG-partition superstep plan (reuses levels + diag_pos).

        Keyed beside the level/plan products: same pattern, distinct
        plans per ``(part, n_threads, superstep knobs)``.
        """
        from ..sched.options import SchedOptions
        from ..sched.superstep import build_superstep_plan

        if opts is None:
            opts = SchedOptions()
        key = ("superstep", part, int(n_threads), opts.superstep_key())
        return self._get(
            key,
            lambda: build_superstep_plan(
                self._pattern,
                part,
                n_threads=n_threads,
                opts=opts,
                levels=self.levels(part),
                diag_idx=self.diag_pos() if part == "upper" else None,
            ),
        )

    def elastic_schedule(self, part, *, staleness):
        """The stale-synchronous schedule for ``part`` (cached per budget)."""
        from ..sched.elastic import build_elastic_schedule

        key = ("elastic", part, int(staleness))
        return self._get(
            key,
            lambda: build_elastic_schedule(
                self._pattern,
                part,
                staleness=staleness,
                levels=self.levels(part),
                diag_idx=self.diag_pos() if part == "upper" else None,
            ),
        )

    def solve_costs(self, part):
        """Per-row (flops, touched) of one triangular sweep (cost model)."""
        from ..core.symbolic import row_solve_costs

        return self._get(f"solve_costs_{part}", lambda: row_solve_costs(self._pattern, part=part))

    def factor_costs(self):
        """Per-row (flops, touched) of the up-looking factorization."""
        from ..core.symbolic import row_factor_costs

        return self._get("factor_costs", lambda: row_factor_costs(self._pattern))


class SymbolicCache:
    """LRU cache of :class:`SymbolicAnalysis`, keyed by pattern fingerprint.

    Thread-safe: the threaded runtime (`repro.runtime`) shares one
    process-wide instance across worker threads, so lookup, insertion,
    eviction and the hit/miss counters are serialized under a lock.  The
    analysis itself is built *outside* the lock (it can be expensive)
    and inserted with a re-check, so two racing threads may both build
    but the cache stays consistent and one entry wins.
    """

    def __init__(self, max_entries=32):
        if int(max_entries) < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, SymbolicAnalysis] = OrderedDict()
        self._lock = threading.Lock()  # verify: ok[JAV002] shared with the threaded runtime
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def configure(self, *, max_entries):
        """Resize the cache at runtime (``REPRO_SYMBOLIC_CACHE_SIZE``).

        Shrinking below the current population evicts
        least-recently-used entries immediately, counted as evictions
        like any capacity eviction.  Returns the evicted fingerprints.
        """
        if int(max_entries) < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        evicted = []
        with self._lock:
            self.max_entries = int(max_entries)
            while len(self._entries) > self.max_entries:
                old_key, _ = self._entries.popitem(last=False)
                self.evictions += 1
                evicted.append(old_key)
        for old_key in evicted:
            _spans.instant("cache.evict", cat="cache", key=old_key[:12])
        return evicted

    def analysis(self, M) -> SymbolicAnalysis:
        """The (possibly cached) symbolic analysis of ``M``'s pattern."""
        key = pattern_fingerprint(M)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
            else:
                self.misses += 1
        # obs events fire outside the lock: the recorder takes its own
        _spans.instant(
            "cache.hit" if entry is not None else "cache.miss",
            cat="cache", key=key[:12], n=int(M.n_rows),
        )
        if entry is None:
            entry = SymbolicAnalysis(M, fingerprint=key)
            evicted = []
            with self._lock:
                entry = self._entries.setdefault(key, entry)
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    old_key, _ = self._entries.popitem(last=False)
                    self.evictions += 1
                    evicted.append(old_key)
            for old_key in evicted:
                _spans.instant("cache.evict", cat="cache", key=old_key[:12])
        if _VALIDATION_HOOK is not None:
            _VALIDATION_HOOK(entry)
        return entry

    def __contains__(self, M):
        with self._lock:
            return pattern_fingerprint(M) in self._entries

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def stats(self):
        """Locked snapshot of the counters — the only supported read.

        The counters are mutated under the cache lock; reading the bare
        attributes from another thread can observe a torn pair (hits
        from before a lookup, misses from after).  The snapshot is
        internally consistent and adds ``hit_rate`` (0.0 when no
        lookups have happened yet, never a ZeroDivisionError).
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            evictions, entries = self.evictions, len(self._entries)
            max_entries = self.max_entries
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "entries": entries,
            "max_entries": max_entries,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    def clear(self):
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


_DEFAULT_CACHE = SymbolicCache()


def default_cache() -> SymbolicCache:
    """The process-wide cache the high-level APIs route through."""
    return _DEFAULT_CACHE


def cached_analysis(M) -> SymbolicAnalysis:
    """Shorthand: analysis of ``M`` from the default cache."""
    return _DEFAULT_CACHE.analysis(M)


def clear_default_cache():
    _DEFAULT_CACHE.clear()


def configure_default_cache(*, max_entries):
    """Resize the process-wide cache (see :meth:`SymbolicCache.configure`).

    The CLI calls this when ``REPRO_SYMBOLIC_CACHE_SIZE`` is set;
    library users may call it directly at startup.
    """
    return _DEFAULT_CACHE.configure(max_entries=max_entries)
