"""Level-batched vectorized kernels and the pattern-keyed symbolic cache.

The framework's hot numeric paths — triangular sweeps and the
upper-stage DES — live here as named kernels with interchangeable
backends (``"scalar"`` reference vs ``"batched"`` level-set NumPy),
resolved through :func:`get_kernel`.  Symbolic analysis products
(diagonal positions, level sets, sweep plans, row costs) are memoized
per sparsity-pattern fingerprint in :class:`SymbolicCache` so repeated
factor/solve cycles reuse them.

Registered kernels (each with ``scalar`` and ``batched`` backends):

* ``trisolve_lower`` — forward solve ``L y = b`` on the combined factor;
* ``trisolve_upper`` — backward solve ``U x = y``;
* ``upper_p2p_sim`` — the point-to-point upper-stage DES.

Backends agree bit-for-bit; see ``docs/kernel_backends.md`` for the
accumulation-order contract and how to add a backend.
"""

from .registry import (
    available_backends,
    available_kernels,
    get_default_backend,
    get_kernel,
    register_kernel,
    set_default_backend,
)
from .plans import (
    TriSolvePlan,
    backward_level_sets,
    build_producer_csr,
    build_trisolve_plan,
    diag_positions,
    forward_level_sets,
)
from .cache import (
    SymbolicAnalysis,
    SymbolicCache,
    cached_analysis,
    clear_default_cache,
    configure_default_cache,
    default_cache,
    freeze_product,
    matrix_fingerprint,
    pattern_fingerprint,
    set_validation_hook,
)

# importing the kernel modules registers their backends; both are part
# of the public surface (re-exported via __all__, no suppression needed)
from . import des, trisolve

__all__ = [
    "des",
    "trisolve",
    "register_kernel",
    "get_kernel",
    "available_backends",
    "available_kernels",
    "set_default_backend",
    "get_default_backend",
    "TriSolvePlan",
    "build_trisolve_plan",
    "forward_level_sets",
    "backward_level_sets",
    "diag_positions",
    "build_producer_csr",
    "SymbolicAnalysis",
    "SymbolicCache",
    "pattern_fingerprint",
    "matrix_fingerprint",
    "cached_analysis",
    "default_cache",
    "clear_default_cache",
    "configure_default_cache",
    "freeze_product",
    "set_validation_hook",
]
