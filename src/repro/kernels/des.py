"""Upper-stage p2p DES kernels: scalar reference and batched backend.

Both simulate the point-to-point level-scheduled upper stage: rows run
in permuted order on their assigned threads; before starting, a row
waits for each *other* thread owning one of its strict-lower
dependencies, bounded by that thread's latest dependency row (the
implied-ordering pruning of §III-A).

The scalar backend resolves dependencies inside the row loop with
``np.unique`` + boolean masks and calls ``machine.work_time`` per row.
The batched backend hoists all of that out of the loop:

* a one-shot producer-CSR (:func:`~repro.kernels.plans.build_producer_csr`)
  precomputes, per row, the distinct producer threads and their latest
  dependency;
* ``machine.work_time_batch`` evaluates every row's roofline time in one
  vectorized call;
* the spin latencies collapse to a ``p × p`` lookup table.

The remaining sequential loop (inherent: each finish time feeds later
rows) touches only Python floats, and both backends produce the same
makespan, finish times and trace to the last bit.

Fault injection (``fault_plan``, a :class:`repro.resilience.FaultPlan`)
layers three deterministic perturbations on top — see
``docs/resilience.md``:

* straggler slowdowns live in the *machine* (its per-thread rates are
  derated at construction), so they need no code here;
* a row in ``spin_faults`` with at least one cross-thread dependency
  wait pays ``spin_fault_penalty`` (a spin-lock timeout + retry);
* a dropped publish ``(u, row)`` makes consumers observe ``u``'s next
  surviving publish instead — or, when no earlier-than-the-consumer
  cover exists, spin until the watchdog fires
  (``finish[row] + sync + watchdog_timeout``) and read the value
  directly (memory was written; only the notification was lost).

All three shift *time* only; the simulated results and the
scalar/batched bit-parity are unaffected.
"""

from __future__ import annotations

import numpy as np

from ..machine.trace import ExecutionTrace
from ..obs import spans as _spans
from .registry import register_kernel

__all__ = []  # access via repro.kernels.get_kernel


def _dropped_covers(thread_of, m, plan):
    """Map each dropped publish ``(u, row)`` to its covering row.

    Progress counters are monotonic, so the next *surviving* publish of
    the same thread covers a lost one.  Returns ``{(u, row): cover}``
    with ``cover = -1`` when no later publish of ``u`` exists below
    ``m`` (consumers then rely on the watchdog).
    """
    covers = {}
    thread_of = np.asarray(thread_of)
    for u, row in plan.dropped:
        cover = -1
        for n in range(row + 1, m):
            if int(thread_of[n]) == u and not plan.is_dropped(u, n):
                cover = n
                break
        covers[(u, row)] = cover
    return covers


@register_kernel("upper_p2p_sim", "scalar")
def upper_p2p_sim_scalar(
    S,
    machine,
    thread_of,
    flops,
    touched,
    *,
    m,
    per_row_overhead=0.0,
    start_time=0.0,
    trace=None,
    fault_plan=None,
    fault_report=None,
):
    """Reference DES loop: per-row dependency resolution and costing."""
    p = machine.n_threads
    thread_time = np.full(p, float(start_time))
    finish = np.zeros(m)
    if trace is None:
        trace = ExecutionTrace(p)
    covers = _dropped_covers(thread_of, m, fault_plan) if fault_plan is not None else {}
    indptr, indices = S.indptr, S.indices
    for r in range(m):
        t = int(thread_of[r])
        start = thread_time[t] + per_row_overhead
        waited = False
        cols = indices[indptr[r] : indptr[r + 1]]
        deps = cols[cols < min(r, m)]
        if deps.size:
            # sparsified sync: one wait per distinct producer thread,
            # bounded by that thread's *latest* dependency row
            producer = thread_of[deps]
            for u in np.unique(producer):
                if u == t:
                    continue  # program order covers same-thread deps
                u = int(u)
                latest = int(deps[producer == u].max())
                lat = machine.sync_latency(t, u)
                if fault_plan is not None and fault_plan.is_dropped(u, latest):
                    cover = covers[(u, latest)]
                    if 0 <= cover < r:
                        cand = finish[cover] + lat
                    else:
                        cand = finish[latest] + lat + fault_plan.watchdog_timeout
                        if fault_report is not None:
                            fault_report.watchdog_engaged = True
                            fault_report.stalls.append((t, u, latest))
                    if fault_report is not None:
                        fault_report.dropped_events += 1
                else:
                    cand = finish[latest] + lat
                waited = True
                start = max(start, cand)
        if fault_plan is not None and waited and r in fault_plan.spin_faults:
            start += fault_plan.spin_fault_penalty
        stop = start + machine.work_time(flops[r], touched[r], thread=t)
        finish[r] = stop
        thread_time[t] = stop
        trace.record(t, start, stop, label=("row", r))
    makespan = float(thread_time.max()) if m else float(start_time)
    return makespan, finish, trace


@register_kernel("upper_p2p_sim", "batched", default=True)
def upper_p2p_sim_batched(
    S,
    machine,
    thread_of,
    flops,
    touched,
    *,
    m,
    per_row_overhead=0.0,
    start_time=0.0,
    trace=None,
    fault_plan=None,
    fault_report=None,
):
    """Batched DES: precomputed producer-CSR + vectorized row costs."""
    from .plans import build_producer_csr

    p = machine.n_threads
    if trace is None:
        trace = ExecutionTrace(p)
    if m == 0:
        return float(start_time), np.zeros(0), trace
    prod_ptr, prod_u, prod_latest = build_producer_csr(S, m, thread_of)
    work = machine.work_time_batch(
        np.asarray(flops[:m], dtype=np.float64),
        np.asarray(touched[:m], dtype=np.float64),
        thread=thread_of[:m],
    )
    sync = machine.sync_latency_matrix()
    covers = _dropped_covers(thread_of, m, fault_plan) if fault_plan is not None else {}
    # plain-Python views: the sequential loop below runs ~10x faster on
    # lists of floats/ints than on NumPy scalars
    work_l = work.tolist()
    thread_l = np.asarray(thread_of[:m]).tolist()
    pp = prod_ptr.tolist()
    pu = prod_u.tolist()
    platest = prod_latest.tolist()
    sync_l = sync.tolist()
    ovh = float(per_row_overhead)
    thread_time = [float(start_time)] * p
    finish = [0.0] * m
    record = trace.record
    for r in range(m):
        t = thread_l[r]
        start = thread_time[t] + ovh
        row_sync = sync_l[t]
        for j in range(pp[r], pp[r + 1]):
            latest = platest[j]
            u = pu[j]
            if fault_plan is not None and fault_plan.is_dropped(u, latest):
                cover = covers[(u, latest)]
                if 0 <= cover < r:
                    cand = finish[cover] + row_sync[u]
                else:
                    cand = finish[latest] + row_sync[u] + fault_plan.watchdog_timeout
                    if fault_report is not None:
                        fault_report.watchdog_engaged = True
                        fault_report.stalls.append((t, u, latest))
                if fault_report is not None:
                    fault_report.dropped_events += 1
            else:
                cand = finish[latest] + row_sync[u]
            if cand > start:
                start = cand
        if fault_plan is not None and pp[r + 1] > pp[r] and r in fault_plan.spin_faults:
            start += fault_plan.spin_fault_penalty
        stop = start + work_l[r]
        finish[r] = stop
        thread_time[t] = stop
        record(t, start, stop, label=("row", r))
    return float(max(thread_time)), np.asarray(finish), trace


# ----------------------------------------------------------------------
# superstep DES kernels (repro.sched DAG-partition schedules)
# ----------------------------------------------------------------------
def _check_superstep_machine(machine, plan):
    if plan.n_threads > machine.n_threads:
        raise ValueError(
            f"plan was partitioned for {plan.n_threads} threads but the "
            f"machine has only {machine.n_threads}"
        )


@register_kernel("superstep_sim", "scalar")
def superstep_sim_scalar(
    S,
    machine,
    plan,
    flops,
    touched,
    *,
    start_time=0.0,
    trace=None,
    step_times=None,
):
    """Reference superstep DES: per-row costing inside each superstep.

    Threads run their superstep rows back-to-back (no intra-step waits
    by construction of the plan); one barrier separates consecutive
    supersteps.  ``step_times`` (optional list) receives the clock at
    each superstep boundary — the observability export's instants.
    """
    _check_superstep_machine(machine, plan)
    p = plan.n_threads
    if trace is None:
        trace = ExecutionTrace(machine.n_threads)
    clock = float(start_time)
    finish = np.zeros(plan.n)
    for s in range(plan.n_steps):
        with _spans.span("sched.superstep", cat="sched", step=s, part=plan.part):
            step_end = clock
            for t in range(p):
                tt = clock
                for r in plan.thread_rows(s, t):
                    r = int(r)
                    stop = tt + machine.work_time(flops[r], touched[r], thread=t)
                    trace.record(t, tt, stop, label=("row", r))
                    finish[r] = stop
                    tt = stop
                if tt > step_end:
                    step_end = tt
            clock = step_end
            if s < plan.n_steps - 1:
                clock += machine.barrier_cost()
        _spans.instant(
            "sched.superstep_boundary", cat="sched",
            step=s, part=plan.part, t=clock,
        )
        if step_times is not None:
            step_times.append(clock)
    return clock, finish, trace


@register_kernel("superstep_sim", "batched", default=True)
def superstep_sim_batched(
    S,
    machine,
    plan,
    flops,
    touched,
    *,
    start_time=0.0,
    trace=None,
    step_times=None,
):
    """Batched superstep DES: vectorized row costs, plain-Python loop."""
    _check_superstep_machine(machine, plan)
    p = plan.n_threads
    if trace is None:
        trace = ExecutionTrace(machine.n_threads)
    n = plan.n
    if n == 0:
        return float(start_time), np.zeros(0), trace
    work = machine.work_time_batch(
        np.asarray(flops, dtype=np.float64),
        np.asarray(touched, dtype=np.float64),
        thread=plan.thread_of,
    )
    work_l = work.tolist()
    rows_l = plan.rows.tolist()
    tptr = plan.thread_ptr.tolist()
    barrier = machine.barrier_cost()
    clock = float(start_time)
    finish = [0.0] * n
    record = trace.record
    for s in range(plan.n_steps):
        with _spans.span("sched.superstep", cat="sched", step=s, part=plan.part):
            step_end = clock
            for t in range(p):
                tt = clock
                for j in range(tptr[s * p + t], tptr[s * p + t + 1]):
                    r = rows_l[j]
                    stop = tt + work_l[r]
                    record(t, tt, stop, label=("row", r))
                    finish[r] = stop
                    tt = stop
                if tt > step_end:
                    step_end = tt
            clock = step_end
            if s < plan.n_steps - 1:
                clock += barrier
        _spans.instant(
            "sched.superstep_boundary", cat="sched",
            step=s, part=plan.part, t=clock,
        )
        if step_times is not None:
            step_times.append(clock)
    return clock, np.asarray(finish), trace
