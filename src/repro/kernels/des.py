"""Upper-stage p2p DES kernels: scalar reference and batched backend.

Both simulate the point-to-point level-scheduled upper stage: rows run
in permuted order on their assigned threads; before starting, a row
waits for each *other* thread owning one of its strict-lower
dependencies, bounded by that thread's latest dependency row (the
implied-ordering pruning of §III-A).

The scalar backend resolves dependencies inside the row loop with
``np.unique`` + boolean masks and calls ``machine.work_time`` per row.
The batched backend hoists all of that out of the loop:

* a one-shot producer-CSR (:func:`~repro.kernels.plans.build_producer_csr`)
  precomputes, per row, the distinct producer threads and their latest
  dependency;
* ``machine.work_time_batch`` evaluates every row's roofline time in one
  vectorized call;
* the spin latencies collapse to a ``p × p`` lookup table.

The remaining sequential loop (inherent: each finish time feeds later
rows) touches only Python floats, and both backends produce the same
makespan, finish times and trace to the last bit.
"""

from __future__ import annotations

import numpy as np

from ..machine.trace import ExecutionTrace
from .registry import register_kernel

__all__ = []  # access via repro.kernels.get_kernel


@register_kernel("upper_p2p_sim", "scalar")
def upper_p2p_sim_scalar(
    S, machine, thread_of, flops, touched, *, m, per_row_overhead=0.0, start_time=0.0, trace=None
):
    """Reference DES loop: per-row dependency resolution and costing."""
    p = machine.n_threads
    thread_time = np.full(p, float(start_time))
    finish = np.zeros(m)
    if trace is None:
        trace = ExecutionTrace(p)
    indptr, indices = S.indptr, S.indices
    for r in range(m):
        t = int(thread_of[r])
        start = thread_time[t] + per_row_overhead
        cols = indices[indptr[r] : indptr[r + 1]]
        deps = cols[cols < min(r, m)]
        if deps.size:
            # sparsified sync: one wait per distinct producer thread,
            # bounded by that thread's *latest* dependency row
            producer = thread_of[deps]
            for u in np.unique(producer):
                if u == t:
                    continue  # program order covers same-thread deps
                latest = deps[producer == u].max()
                start = max(start, finish[latest] + machine.sync_latency(t, int(u)))
        stop = start + machine.work_time(flops[r], touched[r], thread=t)
        finish[r] = stop
        thread_time[t] = stop
        trace.record(t, start, stop, label=("row", r))
    makespan = float(thread_time.max()) if m else float(start_time)
    return makespan, finish, trace


@register_kernel("upper_p2p_sim", "batched", default=True)
def upper_p2p_sim_batched(
    S, machine, thread_of, flops, touched, *, m, per_row_overhead=0.0, start_time=0.0, trace=None
):
    """Batched DES: precomputed producer-CSR + vectorized row costs."""
    from .plans import build_producer_csr

    p = machine.n_threads
    if trace is None:
        trace = ExecutionTrace(p)
    if m == 0:
        return float(start_time), np.zeros(0), trace
    prod_ptr, prod_u, prod_latest = build_producer_csr(S, m, thread_of)
    work = machine.work_time_batch(
        np.asarray(flops[:m], dtype=np.float64),
        np.asarray(touched[:m], dtype=np.float64),
        thread=thread_of[:m],
    )
    sync = machine.sync_latency_matrix()
    # plain-Python views: the sequential loop below runs ~10x faster on
    # lists of floats/ints than on NumPy scalars
    work_l = work.tolist()
    thread_l = np.asarray(thread_of[:m]).tolist()
    pp = prod_ptr.tolist()
    pu = prod_u.tolist()
    platest = prod_latest.tolist()
    sync_l = sync.tolist()
    ovh = float(per_row_overhead)
    thread_time = [float(start_time)] * p
    finish = [0.0] * m
    record = trace.record
    for r in range(m):
        t = thread_l[r]
        start = thread_time[t] + ovh
        row_sync = sync_l[t]
        for j in range(pp[r], pp[r + 1]):
            cand = finish[platest[j]] + row_sync[pu[j]]
            if cand > start:
                start = cand
        stop = start + work_l[r]
        finish[r] = stop
        thread_time[t] = stop
        record(t, start, stop, label=("row", r))
    return float(max(thread_time)), np.asarray(finish), trace
