"""Precomputed structures driving the level-batched kernels.

A :class:`TriSolvePlan` holds everything a batched triangular sweep
needs: the rows in level order, per-level boundaries, and — aligned
arrays — the storage index of every strict-part entry grouped by its
row's position in the level ordering.  With that in hand each level
solves as one gather / multiply / segment-reduce, and the plan is built
*without per-row Python loops* (one ``argsort`` over the strict-part
entries does the grouping), so symbolic setup scales with nnz.

The accumulation contract: within a row, entries appear in ascending
column order (CSR order, preserved by the stable sort), and the batched
segment reduction (:func:`numpy.bincount`) adds them strictly
sequentially in that order — exactly the scalar reference's
``s += data[k] * y[col[k]]`` loop, so the two backends agree
bit-for-bit.

Also here: the array-level level-set computations shared by the plans
and the symbolic cache, and the whole-matrix diagonal locator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ordering.levelsets import LevelSets

__all__ = [
    "TriSolvePlan",
    "build_trisolve_plan",
    "forward_level_sets",
    "backward_level_sets",
    "diag_positions",
    "build_producer_csr",
]


def _pack_levels(level_of, n):
    n_levels = int(level_of.max()) + 1 if n else 0
    counts = np.bincount(level_of, minlength=n_levels)
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    np.cumsum(counts, out=level_ptr[1:])
    rows = np.argsort(level_of, kind="stable").astype(np.int64)
    return LevelSets(level_of=level_of, level_ptr=level_ptr, rows=rows)


def forward_level_sets(pattern) -> LevelSets:
    """Level sets of the forward sweep: deps are strict-lower entries.

    Equivalent to ``level_sets_lower(lower_pattern(S))`` without the
    pattern copy.
    """
    n = pattern.n_rows
    indptr, indices = pattern.indptr, pattern.indices
    level_of = np.zeros(n, dtype=np.int64)
    for r in range(n):
        cols = indices[indptr[r] : indptr[r + 1]]
        deps = cols[cols < r]
        if deps.size:
            level_of[r] = int(level_of[deps].max()) + 1
    return _pack_levels(level_of, n)


def backward_level_sets(pattern) -> LevelSets:
    """Level sets of the backward sweep: deps are strict-upper entries.

    ``level[i] = 1 + max(level[j] : j > i, s_ij ≠ 0)`` computed bottom to
    top; rows solved first (no upper deps) land in level 0.
    """
    n = pattern.n_rows
    indptr, indices = pattern.indptr, pattern.indices
    level_of = np.zeros(n, dtype=np.int64)
    for i in range(n - 1, -1, -1):
        cols = indices[indptr[i] : indptr[i + 1]]
        deps = cols[cols > i]
        if deps.size:
            level_of[i] = int(level_of[deps].max()) + 1
    return _pack_levels(level_of, n)


def diag_positions(pattern, *, message="missing diagonal in factored row {row}"):
    """Storage index of every ``(r, r)`` entry, whole-matrix vectorized.

    One ``searchsorted`` over global ``(row, col)`` keys replaces the
    per-row loop; ``message`` keeps the caller's historical
    ``ValueError`` diagnostics (``{row}`` is substituted).
    """
    n = pattern.n_rows
    indptr, indices = pattern.indptr, pattern.indices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    ncol = np.int64(pattern.n_cols)
    keys = (
        np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr)) * ncol + indices
    )
    want = np.arange(n, dtype=np.int64) * (ncol + 1)
    pos = np.searchsorted(keys, want)
    nnz = keys.shape[0]
    bad = (pos >= nnz) | (keys[np.minimum(pos, nnz - 1)] != want)
    if np.any(bad):
        row = int(np.flatnonzero(bad)[0])
        raise ValueError(message.format(row=row))
    return pos.astype(np.int64)


@dataclass
class TriSolvePlan:
    """Gather/scatter structure for one level-batched triangular sweep.

    ``ent_idx[lev_ent_ptr[l]:lev_ent_ptr[l+1]]`` are the storage indices
    of the strict-``part`` entries of level ``l``'s rows, grouped by row
    (ascending row id within the level, ascending column within a row);
    ``ent_local`` maps each entry to its row's local index inside the
    level.  ``diag_idx`` is present for upper sweeps only.
    """

    part: str
    n: int
    rows: np.ndarray
    level_ptr: np.ndarray
    ent_idx: np.ndarray
    ent_local: np.ndarray
    lev_ent_ptr: np.ndarray
    diag_idx: np.ndarray | None = None

    @property
    def n_levels(self):
        return self.level_ptr.shape[0] - 1


def build_trisolve_plan(pattern, part, *, levels=None, diag_idx=None) -> TriSolvePlan:
    """Build the batched sweep structure for ``part`` ('lower'|'upper').

    ``levels`` (a :class:`LevelSets`) and ``diag_idx`` can be supplied
    by the symbolic cache to avoid recomputation.
    """
    if part not in ("lower", "upper"):
        raise ValueError("part must be 'lower' or 'upper'")
    n = pattern.n_rows
    indptr, indices = pattern.indptr, pattern.indices
    if levels is None:
        levels = forward_level_sets(pattern) if part == "lower" else backward_level_sets(pattern)
    if part == "upper" and diag_idx is None:
        diag_idx = diag_positions(pattern)
    rows = np.asarray(levels.rows, dtype=np.int64)
    level_ptr = np.asarray(levels.level_ptr, dtype=np.int64)

    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    mask = indices < row_of if part == "lower" else indices > row_of
    ent_all = np.flatnonzero(mask)  # CSR order: row-major, ascending column
    # position of each entry's row in the level ordering
    pos_of_row = np.empty(n, dtype=np.int64)
    pos_of_row[rows] = np.arange(n, dtype=np.int64)
    key = pos_of_row[row_of[ent_all]]
    order = np.argsort(key, kind="stable")  # stable: column order survives
    ent_idx = ent_all[order]
    ent_pos = key[order]
    # per-level entry boundaries: cumulative strict-part counts in level order
    cnt = np.bincount(row_of[ent_all], minlength=n) if ent_all.size else np.zeros(n, dtype=np.int64)
    row_ent_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cnt[rows], out=row_ent_ptr[1:])
    lev_ent_ptr = row_ent_ptr[level_ptr]
    # local row index within the level
    lev_of_ent = np.searchsorted(level_ptr, ent_pos, side="right") - 1
    ent_local = ent_pos - level_ptr[lev_of_ent]
    return TriSolvePlan(
        part=part,
        n=n,
        rows=rows,
        level_ptr=level_ptr,
        ent_idx=ent_idx,
        ent_local=ent_local,
        lev_ent_ptr=lev_ent_ptr,
        diag_idx=diag_idx,
    )


def build_producer_csr(S, m, thread_of):
    """Per-row producer table for the p2p DES, built in one shot.

    For every row ``r < m`` and every *other* thread ``u`` owning at
    least one of ``r``'s strict-lower dependencies, record the latest
    such dependency row (its finish bounds every earlier one under the
    implied ordering).  Returns ``(ptr, producer_thread, latest_dep)``
    as a CSR-like triple over rows — the per-row ``np.unique`` +
    boolean-mask work the scalar DES loop repeats is done once here.
    """
    thread_of = np.asarray(thread_of, dtype=np.int64)
    p = int(thread_of.max()) + 1 if thread_of.size else 1
    ptr = np.zeros(m + 1, dtype=np.int64)
    if m == 0:
        return ptr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    end = int(S.indptr[m])
    cols = S.indices[:end]
    row_of = np.repeat(np.arange(m, dtype=np.int64), np.diff(S.indptr[: m + 1]))
    dep_mask = cols < row_of  # deps of r<m are all < r, hence below m too
    d = cols[dep_mask]
    r_of = row_of[dep_mask]
    if d.size == 0:
        return ptr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    u = thread_of[d]
    key = r_of * p + u
    order = np.argsort(key, kind="stable")  # within a group, dep rows ascend
    ks = key[order]
    ds = d[order]
    last = np.flatnonzero(np.r_[ks[1:] != ks[:-1], np.ones(1, dtype=bool)])
    gkey = ks[last]
    latest = ds[last]
    g_row = gkey // p
    g_u = gkey % p
    keep = g_u != thread_of[g_row]  # program order covers same-thread deps
    g_row, g_u, latest = g_row[keep], g_u[keep], latest[keep]
    np.cumsum(np.bincount(g_row, minlength=m), out=ptr[1:])
    return ptr, g_u, latest
