"""Simulated many-core shared-memory machine.

The paper's evaluation runs on two real testbeds — a 2×14-core Intel
Haswell node (Bridges/PSC) and a 68-core Intel Knights Landing node
(Stampede2/TACC).  Python's GIL makes faithful fine-grained threading
impossible, so this subpackage replaces the hardware with a
deterministic cost model + discrete-event simulator:

* :mod:`topology` — machine descriptions (sockets, cores, HW threads,
  flop rates, memory roofline, sync/tasking latencies, vector lanes)
  with calibrated ``haswell()`` and ``knl()`` presets;
* :mod:`core` — :class:`SimMachine`, the thread→core placement plus the
  cost-model queries every executor uses (row cost, sync latency,
  barrier cost, task overhead);
* :mod:`tasking` — a greedy list-scheduling DES for DAGs of tasks with
  per-task queue overheads (the OpenMP-task model of the SR stage);
* :mod:`trace` — execution traces with causality/utilization checks.

What the simulator preserves from the real machines is exactly what the
paper's conclusions rest on: the *relative* cost of barriers vs
point-to-point spin synchronization, of on- vs cross-socket traffic, of
task-queue overhead growing with thread count, and the bandwidth
roofline that makes ILU memory-bound.
"""

from .topology import MachineSpec, gpulike, haswell, knl, uniform_machine
from .core import SimMachine
from .tasking import Task, TaskGraph, simulate_task_graph
from .trace import ExecutionTrace, Interval

__all__ = [
    "MachineSpec",
    "haswell",
    "knl",
    "gpulike",
    "uniform_machine",
    "SimMachine",
    "Task",
    "TaskGraph",
    "simulate_task_graph",
    "ExecutionTrace",
    "Interval",
]
