"""Machine descriptions and the calibrated Haswell / KNL presets.

The constants below are not microarchitectural gospel; they are the
minimal set of rates and latencies that reproduce the *shape* of the
paper's scaling results:

* sparse kernels are memory-bound, so each task's time is the roofline
  ``max(flop time, byte time)``;
* a single thread cannot saturate a socket — per-thread bandwidth is
  ``min(single_thread_bw, socket_bw / threads_on_socket)``;
* crossing the socket boundary multiplies sync latency and charges a
  NUMA penalty on remote traffic (why Fig. 10b shows little gain from
  14→28 cores);
* KNL cores are individually weak but numerous, with huge MCDRAM
  bandwidth in cache mode and wide (8-lane) vectors, and its OpenMP
  task queue is expensive at high thread counts (why §V observes the SR
  tasking stage stops helping at 68 threads);
* a second hardware thread per KNL core shares the core's L2/issue
  slots and adds only a modest throughput factor (why Fig. 11b's 136-
  thread runs barely move).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "haswell", "knl", "gpulike", "uniform_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a simulated shared-memory node.

    Rates are per-second; latencies in seconds; bandwidths in bytes/s.
    """

    name: str
    n_sockets: int
    cores_per_socket: int
    threads_per_core: int
    # compute
    flops_per_core: float  # effective scalar flop rate on sparse kernels
    vector_lanes: int  # doubles per SIMD operation
    vector_efficiency: float  # fraction of ideal SIMD speedup achievable
    smt_throughput: float  # extra throughput of a 2nd HW thread (1.0 = none)
    # memory
    single_thread_bw: float  # streaming bandwidth achievable by one thread
    socket_bw: float  # aggregate bandwidth of one socket
    numa_remote_factor: float  # slowdown of traffic to the remote socket
    remote_traffic_fraction: float  # fraction of a task's bytes that go remote
    # synchronization
    spin_poll: float  # p2p spin-lock observe latency, on-socket
    cross_socket_sync_factor: float  # multiplier for cross-socket p2p
    barrier_base: float  # barrier latency, constant part
    barrier_per_log2p: float  # barrier latency per log2(threads) (fan-in)
    # tasking (OpenMP task queue)
    task_spawn_overhead: float  # cost to enqueue one task
    task_dispatch_overhead: float  # cost to dequeue/start one task
    task_contention_coeff: float  # extra dequeue cost per active thread

    @property
    def n_cores(self):
        return self.n_sockets * self.cores_per_socket

    @property
    def max_threads(self):
        return self.n_cores * self.threads_per_core

    def with_(self, **kw):
        """A copy with selected fields overridden (calibration hook)."""
        return replace(self, **kw)

    def scaled_overheads(self, factor: float) -> "MachineSpec":
        """Scale all fixed latencies (sync, barrier, tasking) by ``factor``.

        The benchmark matrices are scaled-down stand-ins for the
        published ones (≈ 1/25–1/40 of the rows).  Per-row work shrinks
        with the matrix but real hardware latencies would not, so on a
        miniature matrix the unscaled overheads would dominate in a way
        the paper's full-size runs never see.  Scaling the latencies by
        the same factor as the matrix preserves the overhead-to-work
        ratio — the quantity the paper's comparisons actually probe.
        """
        return replace(
            self,
            spin_poll=self.spin_poll * factor,
            barrier_base=self.barrier_base * factor,
            barrier_per_log2p=self.barrier_per_log2p * factor,
            task_spawn_overhead=self.task_spawn_overhead * factor,
            task_dispatch_overhead=self.task_dispatch_overhead * factor,
            task_contention_coeff=self.task_contention_coeff * factor,
        )


def haswell() -> MachineSpec:
    """2 × 14-core Intel Xeon E5-2695 v3 (Bridges at PSC)."""
    return MachineSpec(
        name="haswell",
        n_sockets=2,
        cores_per_socket=14,
        threads_per_core=1,
        flops_per_core=2.2e9,
        vector_lanes=4,  # AVX2, 256-bit
        vector_efficiency=0.5,
        smt_throughput=1.0,
        single_thread_bw=8.5e9,
        socket_bw=68.0e9,
        numa_remote_factor=2.6,
        remote_traffic_fraction=0.30,
        spin_poll=60e-9,
        cross_socket_sync_factor=6.0,
        barrier_base=0.9e-6,
        barrier_per_log2p=0.45e-6,
        task_spawn_overhead=0.4e-6,
        task_dispatch_overhead=0.9e-6,
        task_contention_coeff=0.035e-6,
    )


def knl() -> MachineSpec:
    """68-core Intel Xeon Phi 7250, cache mode (Stampede2 at TACC)."""
    return MachineSpec(
        name="knl",
        n_sockets=1,
        cores_per_socket=68,
        threads_per_core=2,  # the paper tests 1 and 2 threads/core
        flops_per_core=0.75e9,
        vector_lanes=8,  # AVX-512
        vector_efficiency=0.6,
        smt_throughput=1.18,
        single_thread_bw=5.0e9,
        socket_bw=170.0e9,  # MCDRAM as cache, irregular-access effective
        numa_remote_factor=1.0,
        remote_traffic_fraction=0.0,
        spin_poll=250e-9,
        cross_socket_sync_factor=1.0,
        barrier_base=2.8e-6,
        barrier_per_log2p=1.1e-6,
        task_spawn_overhead=1.2e-6,
        task_dispatch_overhead=2.6e-6,
        task_contention_coeff=0.06e-6,
    )


def gpulike() -> MachineSpec:
    """A GPU-flavoured lane machine for the sync-free scheduler studies.

    Not a calibrated device model — a *regime* model
    (``docs/machine_model.md``): thousands of slow scalar lanes, huge
    aggregate bandwidth, near-free flag polling (an L2 atomic read,
    single-digit nanoseconds) and *expensive* device-wide barriers
    (grid sync / kernel relaunch, tens of microseconds).  This inverts
    the CPU presets' sync economy, which is exactly the regime where
    Li-style self-scheduled trisolve beats every level-set schedule.
    """
    return MachineSpec(
        name="gpulike",
        n_sockets=1,
        cores_per_socket=1024,
        threads_per_core=1,
        flops_per_core=5.0e7,  # one slow lane; throughput comes from width
        vector_lanes=1,  # lanes ARE the vector; no further SIMD per lane
        vector_efficiency=1.0,
        smt_throughput=1.0,
        single_thread_bw=1.5e9,
        socket_bw=900.0e9,  # HBM-class aggregate
        numa_remote_factor=1.0,
        remote_traffic_fraction=0.0,
        spin_poll=4e-9,  # a flag poll is an L2 atomic, near-free
        cross_socket_sync_factor=1.0,
        barrier_base=18e-6,  # a device-wide barrier is a kernel relaunch
        barrier_per_log2p=1.5e-6,
        task_spawn_overhead=2.0e-6,
        task_dispatch_overhead=4.0e-6,
        task_contention_coeff=0.002e-6,
    )


def uniform_machine(
    n_cores=8,
    flops_per_core=2.0e9,
    single_thread_bw=10.0e9,
    socket_bw=None,
    **kw,
) -> MachineSpec:
    """A single-socket machine for tests and what-if studies."""
    defaults = dict(
        name=f"uniform{n_cores}",
        n_sockets=1,
        cores_per_socket=n_cores,
        threads_per_core=1,
        flops_per_core=flops_per_core,
        vector_lanes=4,
        vector_efficiency=0.5,
        smt_throughput=1.0,
        single_thread_bw=single_thread_bw,
        socket_bw=socket_bw if socket_bw is not None else single_thread_bw * n_cores * 0.6,
        numa_remote_factor=1.0,
        remote_traffic_fraction=0.0,
        spin_poll=50e-9,
        cross_socket_sync_factor=1.0,
        barrier_base=1e-6,
        barrier_per_log2p=0.5e-6,
        task_spawn_overhead=0.5e-6,
        task_dispatch_overhead=1.0e-6,
        task_contention_coeff=0.05e-6,
    )
    defaults.update(kw)
    return MachineSpec(**defaults)
