"""Execution traces from the simulator.

Every simulated execution (upper stage, lower stages, triangular
solves, baselines) can emit an :class:`ExecutionTrace`: per-thread busy
intervals labelled with the work item.  Traces support the invariants
the tests lean on — causality (no task starts before its dependencies
finish plus the sync latency), non-overlap within a thread, and
conservation (total busy time equals the sum of task costs) — plus
utilization summaries used by the ablation benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


__all__ = ["Interval", "ExecutionTrace"]


@dataclass(frozen=True)
class Interval:
    """One busy interval on a thread."""

    thread: int
    start: float
    stop: float
    label: object = None

    @property
    def duration(self):
        return self.stop - self.start


@dataclass
class ExecutionTrace:
    """Per-thread timeline of a simulated execution."""

    n_threads: int
    intervals: list = field(default_factory=list)

    def record(self, thread, start, stop, label=None):
        if stop < start:
            raise ValueError(f"negative interval on thread {thread}: [{start}, {stop}]")
        self.intervals.append(Interval(int(thread), float(start), float(stop), label))

    def makespan(self):
        return max((iv.stop for iv in self.intervals), default=0.0)

    def busy_time(self, thread=None):
        if thread is None:
            return sum(iv.duration for iv in self.intervals)
        return sum(iv.duration for iv in self.intervals if iv.thread == thread)

    def occupancy(self, thread):
        """Union length of ``thread``'s intervals (overlap counted once).

        Differs from :meth:`busy_time` exactly when intervals on the
        thread overlap — a malformed trace the race detector assumes
        cannot happen; :meth:`overlapping_threads` flags it.
        """
        total = 0.0
        cur_start = cur_stop = None
        for iv in self.thread_intervals(thread):
            if cur_stop is None or iv.start > cur_stop:
                if cur_stop is not None:
                    total += cur_stop - cur_start
                cur_start, cur_stop = iv.start, iv.stop
            else:
                cur_stop = max(cur_stop, iv.stop)
        if cur_stop is not None:
            total += cur_stop - cur_start
        return total

    def utilization(self):
        """Mean fraction of the makespan each thread spends busy.

        An empty trace has utilization 0.0 (nothing ran), and per-thread
        occupancy counts overlapping intervals once, so the result is
        always in ``[0, 1]`` — double-booked threads cannot push it
        past 1 (they are reported by :meth:`overlapping_threads`).
        """
        span = self.makespan()
        if span == 0.0:
            return 0.0
        occ = sum(self.occupancy(t) for t in range(self.n_threads))
        return occ / (span * self.n_threads)

    def per_thread_utilization(self):
        """Busy fraction of the makespan per thread (overlap-safe).

        The metrics layer (:func:`repro.obs.record_trace_metrics`) feeds
        this into its thread-utilization histogram.  Empty traces give
        all zeros.
        """
        span = self.makespan()
        if span == 0.0:
            return [0.0] * self.n_threads
        return [self.occupancy(t) / span for t in range(self.n_threads)]

    def overlapping_threads(self, tol=1e-12):
        """Threads whose intervals overlap each other (malformed traces).

        Program order within a thread is the race detector's ground
        assumption; a nonempty result means the trace was recorded
        wrongly and utilization numbers are occupancy-clamped.
        """
        out = []
        for t in range(self.n_threads):
            ivs = self.thread_intervals(t)
            if any(b.start < a.stop - tol for a, b in zip(ivs, ivs[1:])):
                out.append(t)
        return out

    def thread_intervals(self, thread):
        return sorted(
            (iv for iv in self.intervals if iv.thread == thread), key=lambda iv: iv.start
        )

    def finish_of(self, label):
        for iv in self.intervals:
            if iv.label == label:
                return iv.stop
        raise KeyError(label)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_no_overlap(self, tol=1e-12):
        """No two intervals on the same thread may overlap."""
        for t in range(self.n_threads):
            ivs = self.thread_intervals(t)
            for a, b in zip(ivs, ivs[1:]):
                if b.start < a.stop - tol:
                    raise AssertionError(
                        f"thread {t}: interval {b.label} starts at {b.start} "
                        f"before {a.label} ends at {a.stop}"
                    )
        return True

    def check_causality(self, deps, sync=None, tol=1e-12):
        """Check ``start(task) >= finish(dep) [+ sync latency]`` for all deps.

        ``deps`` maps a label to an iterable of labels it depends on;
        ``sync(waiter_interval, producer_interval)`` returns the minimum
        gap required (default 0).
        """
        by_label = {iv.label: iv for iv in self.intervals}
        for label, dlist in deps.items():
            if label not in by_label:
                continue
            iv = by_label[label]
            for d in dlist:
                if d not in by_label:
                    continue
                dv = by_label[d]
                gap = sync(iv, dv) if sync is not None else 0.0
                if iv.start < dv.stop + gap - tol:
                    raise AssertionError(
                        f"causality violation: {label} starts at {iv.start} but "
                        f"dependency {d} finishes at {dv.stop} (+{gap} sync)"
                    )
        return True

    def summary(self):
        return {
            "makespan": self.makespan(),
            "busy": self.busy_time(),
            "utilization": self.utilization(),
            "n_intervals": len(self.intervals),
            "overlap_threads": self.overlapping_threads(),
        }

    def ascii_gantt(self, width=72, max_threads=16):
        """Render the timeline as an ASCII Gantt chart.

        One row per thread; '#' marks busy columns, '.' idle, with the
        thread's utilization at the right.  Useful in examples and when
        eyeballing why a schedule underperforms (idle tails, stragglers).
        """
        span = self.makespan()
        if span == 0.0 or not self.intervals:
            return "(empty trace)"
        lines = [f"0{'s':<{width - 10}}{span:.3e}s"]
        for t in range(min(self.n_threads, max_threads)):
            cells = [False] * width
            for iv in self.intervals:
                if iv.thread != t:
                    continue
                a = int(iv.start / span * width)
                b = max(a + 1, int(math.ceil(iv.stop / span * width)))
                for c in range(a, min(b, width)):
                    cells[c] = True
            busy = self.busy_time(t) / span
            bar = "".join("#" if c else "." for c in cells)
            lines.append(f"t{t:<3d}|{bar}| {busy:4.0%}")
        if self.n_threads > max_threads:
            lines.append(f"... ({self.n_threads - max_threads} more threads)")
        return "\n".join(lines)
