"""SimMachine: thread placement plus the cost-model queries.

Every executor (the level-scheduled upper stage, the ER/SR lower
stages, the triangular solves, the baselines) asks a :class:`SimMachine`
three kinds of question:

* *how long does this piece of work take on thread t?* —
  :meth:`work_time`, a roofline over flops and bytes with per-thread
  bandwidth shares and optional SIMD speedup;
* *how long until thread t observes something thread u wrote?* —
  :meth:`sync_latency` (point-to-point spin) and :meth:`barrier_cost`;
* *what does the task runtime charge?* — :meth:`task_spawn_cost` /
  :meth:`task_dispatch_cost` with queue contention.

Thread placement is compact: threads fill socket 0's cores first, then
socket 1's, then wrap onto second hardware threads — matching how
OpenMP with ``OMP_PROC_BIND=close`` places threads on the testbeds.
"""

from __future__ import annotations

import math

import numpy as np

from .topology import MachineSpec

__all__ = ["SimMachine"]

_BYTES_PER_NNZ = 12.0  # 8-byte value + 4-byte index, the CSR streaming unit


class SimMachine:
    """A machine spec instantiated with a particular thread count.

    Parameters
    ----------
    spec:
        The static machine description.
    n_threads:
        Number of OpenMP-style threads in use (≤ ``spec.max_threads``).
    fault_plan:
        Optional :class:`repro.resilience.FaultPlan`.  Straggler rate
        multipliers are folded into the per-thread flop/bandwidth rates
        here — the single place both :meth:`work_time` and
        :meth:`work_time_batch` read them — so a faulty machine stays
        bit-identical between the scalar and batched DES backends.
    """

    def __init__(self, spec: MachineSpec, n_threads: int, *, fault_plan=None):
        if n_threads < 1 or n_threads > spec.max_threads:
            raise ValueError(
                f"n_threads={n_threads} outside [1, {spec.max_threads}] for {spec.name}"
            )
        self.spec = spec
        self.n_threads = int(n_threads)
        self.fault_plan = fault_plan
        self._place_threads()
        self._derive_rates()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _place_threads(self):
        spec = self.spec
        socket = np.empty(self.n_threads, dtype=np.int64)
        core = np.empty(self.n_threads, dtype=np.int64)
        hwthread = np.empty(self.n_threads, dtype=np.int64)
        for t in range(self.n_threads):
            pass_idx, core_idx = divmod(t, spec.n_cores)
            socket[t] = core_idx // spec.cores_per_socket
            core[t] = core_idx
            hwthread[t] = pass_idx
        self.socket_of = socket
        self.core_of = core
        self.hwthread_of = hwthread
        self.threads_per_socket = np.bincount(socket, minlength=spec.n_sockets)
        self.n_sockets_used = int(np.count_nonzero(self.threads_per_socket))

    # ------------------------------------------------------------------
    # derived rates
    # ------------------------------------------------------------------
    def _derive_rates(self):
        spec = self.spec
        # flop rate per thread: a second HW thread on the same core
        # shares issue slots — together the two threads get
        # smt_throughput × one core's rate.
        core_threads = np.bincount(
            self.core_of + self.socket_of * 0, minlength=spec.n_cores
        )
        self._flops_per_thread = np.empty(self.n_threads)
        for t in range(self.n_threads):
            sharers = core_threads[self.core_of[t]]
            if sharers <= 1:
                self._flops_per_thread[t] = spec.flops_per_core
            else:
                self._flops_per_thread[t] = (
                    spec.flops_per_core * spec.smt_throughput / sharers
                )
        # bandwidth per thread: equal share of the socket, capped by what
        # one thread can pull on its own.
        self._bw_per_thread = np.empty(self.n_threads)
        for t in range(self.n_threads):
            share = spec.socket_bw / max(int(self.threads_per_socket[self.socket_of[t]]), 1)
            self._bw_per_thread[t] = min(spec.single_thread_bw, share)
        if self.fault_plan is not None:
            for t in range(self.n_threads):
                rate = self.fault_plan.rate(t)
                self._flops_per_thread[t] /= rate
                self._bw_per_thread[t] /= rate

    # ------------------------------------------------------------------
    # cost queries
    # ------------------------------------------------------------------
    def work_time(self, flops, nnz_touched, thread=0, vectorized=False, remote=None):
        """Roofline time for a task on ``thread``.

        Parameters
        ----------
        flops:
            Floating-point operations in the task.
        nnz_touched:
            CSR entries streamed (converted to bytes internally).
        vectorized:
            Whether the kernel runs SIMD (SR tiles do; scalar up-looking
            row kernels do not).
        remote:
            Override the fraction of traffic charged at remote-NUMA cost;
            default is the spec's ``remote_traffic_fraction`` when more
            than one socket is active, else 0.
        """
        spec = self.spec
        frate = self._flops_per_thread[thread]
        if vectorized:
            frate *= 1.0 + (spec.vector_lanes - 1) * spec.vector_efficiency
        t_flop = flops / frate
        bytes_ = nnz_touched * _BYTES_PER_NNZ
        if remote is None:
            remote = spec.remote_traffic_fraction if self.n_sockets_used > 1 else 0.0
        bw = self._bw_per_thread[thread]
        t_mem = (bytes_ * (1.0 - remote)) / bw + (bytes_ * remote * spec.numa_remote_factor) / bw
        return max(t_flop, t_mem)

    def work_time_batch(self, flops, nnz_touched, thread=0, vectorized=False, remote=None):
        """Vectorized :meth:`work_time` over arrays of tasks.

        ``flops``, ``nnz_touched`` and ``thread`` broadcast together;
        the arithmetic mirrors the scalar query expression-for-expression
        so each element is bit-identical to the corresponding
        ``work_time`` call — the batched DES and schedulers rely on
        exact agreement with the scalar reference.
        """
        spec = self.spec
        flops = np.asarray(flops, dtype=np.float64)
        nnz_touched = np.asarray(nnz_touched, dtype=np.float64)
        thread = np.asarray(thread)
        frate = self._flops_per_thread[thread]
        if vectorized:
            frate = frate * (1.0 + (spec.vector_lanes - 1) * spec.vector_efficiency)
        t_flop = flops / frate
        bytes_ = nnz_touched * _BYTES_PER_NNZ
        if remote is None:
            remote = spec.remote_traffic_fraction if self.n_sockets_used > 1 else 0.0
        bw = self._bw_per_thread[thread]
        t_mem = (bytes_ * (1.0 - remote)) / bw + (bytes_ * remote * spec.numa_remote_factor) / bw
        return np.maximum(t_flop, t_mem)

    def sync_latency(self, waiter_thread, producer_thread):
        """Point-to-point spin-wait observe latency between two threads."""
        spec = self.spec
        if waiter_thread == producer_thread:
            return 0.0
        lat = spec.spin_poll
        if self.socket_of[waiter_thread] != self.socket_of[producer_thread]:
            lat *= spec.cross_socket_sync_factor
        return lat

    def sync_latency_matrix(self):
        """All pairwise spin latencies as a ``p × p`` table.

        ``M[w, u] == sync_latency(w, u)`` exactly; the batched DES looks
        latencies up here instead of calling the scalar query per row.
        """
        spec = self.spec
        p = self.n_threads
        M = np.full((p, p), spec.spin_poll)
        cross = self.socket_of[:, None] != self.socket_of[None, :]
        M[cross] = spec.spin_poll * spec.cross_socket_sync_factor
        np.fill_diagonal(M, 0.0)
        return M

    def barrier_cost(self):
        """Cost of a full barrier across all active threads."""
        spec = self.spec
        p = max(self.n_threads, 2)
        return spec.barrier_base + spec.barrier_per_log2p * math.log2(p)

    def task_spawn_cost(self):
        return self.spec.task_spawn_overhead

    def task_dispatch_cost(self):
        """Dequeue cost including contention on the shared queue."""
        spec = self.spec
        return spec.task_dispatch_overhead + spec.task_contention_coeff * self.n_threads

    def serial_machine(self):
        """A 1-thread view of the same spec (for speedup baselines)."""
        return SimMachine(self.spec, 1)

    def with_faults(self, fault_plan):
        """The same machine with a fault plan applied (or removed)."""
        return SimMachine(self.spec, self.n_threads, fault_plan=fault_plan)

    def __repr__(self):
        faults = ", faulty" if self.fault_plan is not None else ""
        return (
            f"SimMachine({self.spec.name}, threads={self.n_threads}, "
            f"sockets_used={self.n_sockets_used}{faults})"
        )
