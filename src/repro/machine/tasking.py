"""OpenMP-style task-graph simulation (greedy list scheduling).

The Segmented-Rows lower stage and the WSMP-like baseline spawn DAGs of
tasks into a shared queue.  This module simulates that runtime: a
central ready-queue, per-task spawn/dispatch overheads (dispatch grows
with thread-count contention — the effect §V blames for SR's fading
benefit at 68 KNL threads), and greedy assignment of the earliest ready
task to the earliest free thread.

The simulation is deterministic: ties break on task id, which plays the
role of the queue's FIFO order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .core import SimMachine
from .trace import ExecutionTrace

__all__ = ["Task", "TaskGraph", "simulate_task_graph"]


@dataclass
class Task:
    """One node of a task DAG.

    ``cost_fn(thread) -> seconds`` lets the task's cost depend on which
    thread runs it (NUMA placement, SMT shares); pass a float for a
    placement-independent cost.
    """

    tid: int
    cost: object  # float or callable(thread) -> float
    deps: tuple = ()
    label: object = None

    def cost_on(self, thread):
        if callable(self.cost):
            return float(self.cost(thread))
        return float(self.cost)


@dataclass
class TaskGraph:
    tasks: list = field(default_factory=list)

    def add(self, cost, deps=(), label=None):
        t = Task(tid=len(self.tasks), cost=cost, deps=tuple(int(d) for d in deps), label=label)
        self.tasks.append(t)
        return t.tid

    def __len__(self):
        return len(self.tasks)

    def validate_acyclic(self):
        """Deps must point to lower task ids (construction order is topo)."""
        for t in self.tasks:
            for d in t.deps:
                if d >= t.tid:
                    raise ValueError(f"task {t.tid} depends on later task {d}")
        return True

    def critical_path(self, thread=0, machine: SimMachine | None = None):
        """Length of the longest cost-weighted dependency chain."""
        finish = np.zeros(len(self.tasks))
        for t in self.tasks:
            base = max((finish[d] for d in t.deps), default=0.0)
            finish[t.tid] = base + t.cost_on(thread)
        return float(finish.max()) if len(self.tasks) else 0.0

    def total_work(self, thread=0):
        return float(sum(t.cost_on(thread) for t in self.tasks))


_LIGHTWEIGHT_DISPATCH_FACTOR = 8.0  # central-queue vs per-thread deques
_LIGHTWEIGHT_SPAWN_FACTOR = 4.0


def simulate_task_graph(
    graph: TaskGraph,
    machine: SimMachine,
    *,
    charge_overheads=True,
    runtime="openmp",
    fault_plan=None,
):
    """Simulate the DAG on the machine's task runtime.

    Returns ``(makespan, trace)``.  Each executed task is charged a
    dispatch overhead (with queue contention); each spawned task charges
    a spawn overhead, accounted as a serial prologue (the spawning loop
    of Fig. 6 runs on one thread).

    ``fault_plan`` (a :class:`repro.resilience.FaultPlan`) slows each
    task by its thread's straggler rate.  Use it for graphs with
    placement-independent float costs; callable costs built on a
    machine that already carries the plan see the slowdown through the
    machine's rates and must not pass it again (double-counting).

    ``runtime`` selects the tasking model: "openmp" is the shared-queue
    runtime whose contention §V blames for SR fading at 68 KNL threads;
    "lightweight" models the specialized library the paper says is
    "currently being constructed in Javelin for this reason" — per-thread
    work-stealing deques with no shared-queue contention and much
    smaller fixed costs.
    """
    graph.validate_acyclic()
    n_tasks = len(graph.tasks)
    trace = ExecutionTrace(machine.n_threads)
    if n_tasks == 0:
        return 0.0, trace

    if runtime == "openmp":
        spawn_each = machine.task_spawn_cost()
        dispatch = machine.task_dispatch_cost()
    elif runtime == "lightweight":
        spawn_each = machine.task_spawn_cost() / _LIGHTWEIGHT_SPAWN_FACTOR
        dispatch = (
            machine.spec.task_dispatch_overhead / _LIGHTWEIGHT_DISPATCH_FACTOR
        )  # no contention term: deques are per-thread
    else:
        raise ValueError(f"unknown tasking runtime {runtime!r}")
    spawn_time = spawn_each * n_tasks if charge_overheads else 0.0
    if not charge_overheads:
        dispatch = 0.0

    indeg = np.zeros(n_tasks, dtype=np.int64)
    children = [[] for _ in range(n_tasks)]
    for t in graph.tasks:
        indeg[t.tid] = len(t.deps)
        for d in t.deps:
            children[d].append(t.tid)

    finish = np.zeros(n_tasks)
    ready_at = np.full(n_tasks, spawn_time)
    # ready heap: (ready_time, tid); thread heap: (free_time, thread)
    ready = [(spawn_time, int(t.tid)) for t in graph.tasks if indeg[t.tid] == 0]
    heapq.heapify(ready)
    threads = [(spawn_time, th) for th in range(machine.n_threads)]
    heapq.heapify(threads)
    n_done = 0

    while n_done < n_tasks:
        if not ready:
            raise RuntimeError("task graph deadlocked (cycle slipped past validation)")
        r_time, tid = heapq.heappop(ready)
        f_time, th = heapq.heappop(threads)
        start = max(r_time, f_time) + dispatch
        cost = graph.tasks[tid].cost_on(th)
        if fault_plan is not None:
            cost *= fault_plan.rate(th)
        stop = start + cost
        trace.record(th, start, stop, label=graph.tasks[tid].label or tid)
        finish[tid] = stop
        heapq.heappush(threads, (stop, th))
        n_done += 1
        for c in children[tid]:
            indeg[c] -= 1
            ready_at[c] = max(ready_at[c], stop)
            if indeg[c] == 0:
                heapq.heappush(ready, (float(ready_at[c]), int(c)))
    return trace.makespan(), trace
