"""Explicit-state model checker for the cluster failover/hedging protocol.

:mod:`repro.verify.conservation` audits *one* trace of
:class:`~repro.cluster.service.ClusterService`; this module checks the
protocol itself, over **all** interleavings of a small abstract
instance.  The abstraction keeps exactly the protocol-visible structure
of the service — requests move through ``queued → in-flight (with up to
``max_hedges`` duplicate copies) → lost → terminated``, nodes crash,
get suspected, recover and join on a consistent-hash walk shared with
the real :class:`~repro.cluster.ring.HashRing` — and erases everything
that only moves *time* (virtual clocks, backoff delays, heartbeats on a
grid, batching, cache re-warming).  Because the real event loop is a
deterministic schedule of exactly these transitions, every protocol
event sequence the service can produce is a path of the abstract
transition system; :func:`check_cluster_trace` replays a recorded
``ClusterService.protocol_trace`` through the abstract rules to keep
the abstraction honest (the hypothesis cross-check in
``tests/property/test_protocol_props.py``).

:func:`model_check` explores the full reachable state graph
breadth-first and checks, on every edge and every terminal state:

* **exactly-one termination** — no request terminates twice (the
  model-level lift of :func:`repro.verify.check_conservation` from one
  trace to the whole interleaving space);
* **no silent loss** — a flight lost to a crash leaves the request in
  a state where failover or a deadline outcome is still possible; the
  planted ``drop_failover`` bug strands it and is reported;
* **hedge safety** — duplicate completions of a hedged request are
  discarded, never terminate it a second time; the planted
  ``dual_dispatch`` bug terminates again and is reported;
* **termination / livelock freedom** (``liveness=True``) — from every
  reachable state some fair continuation reaches the all-terminated
  state, despite the `ExponentialBackoff` retry loop (which the model
  collapses to the untimed ``failover`` transition it delays).

Counterexamples are shortest transition paths (BFS order), formatted
like sanitizer reports by :meth:`ProtocolWitness.format` and
exportable as chrome-trace lanes via :func:`witness_trace_events`.

:func:`check_replication_prefix` separately checks the one invariant
that lives in the *real* router rather than the abstraction: the
replica set of any fingerprint, hot or cold, is always a prefix of the
ring's distinct-node walk (so failover order and replication order
agree, and re-warming always copies to nodes that can be routed to).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "ProtocolConfig",
    "ProtocolWitness",
    "ProtocolReport",
    "ConformanceReport",
    "model_check",
    "check_cluster_trace",
    "check_replication_prefix",
    "witness_trace_events",
]

# request outcomes the abstract model can produce (a subset of
# repro.serve.request.OUTCOMES: "rejected"/"breakdown" happen before or
# below the failover protocol and are not interleaving-dependent)
_OUTCOMES = ("served", "deadline_miss")

# node phases: up / down-unsuspected / down-suspected / not-yet-joined
_UP = ("u",)
_BELIEVED_UP = ("u", "d")  # 'd' = crashed inside the suspicion window


@dataclass(frozen=True)
class ProtocolConfig:
    """One abstract instance of the cluster protocol.

    Defaults are the CI selftest configuration demanded by the gate:
    3 nodes, 4 requests, hedging and one crash enabled.  ``walks``
    (per-request failover orders) default to the real seeded
    :class:`~repro.cluster.ring.HashRing` walk of ``"req:{i}"``, so the
    model routes with the same ring code the service does.  Node 0 is
    crash-exempt and never joins late, mirroring
    :meth:`repro.cluster.faults.NodeFaultPlan.seeded`.
    """

    n_nodes: int = 3
    n_requests: int = 4
    max_hedges: int = 1
    crash_budget: int = 1
    allow_recover: bool = True
    delayed_joins: int = 0
    drop_failover: bool = False
    dual_dispatch: bool = False
    ring_seed: int = 0
    vnodes: int = 8
    walks: tuple = ()

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if not 0 <= self.delayed_joins < self.n_nodes:
            raise ValueError(
                f"delayed_joins must leave node 0 present ({self.delayed_joins})"
            )
        if self.max_hedges < 0 or self.crash_budget < 0:
            raise ValueError("max_hedges and crash_budget must be >= 0")
        if not self.walks:
            object.__setattr__(self, "walks", self._ring_walks())
        for w in self.walks:
            if sorted(w) != list(range(self.n_nodes)):
                raise ValueError(f"walk {w!r} is not a distinct-node order")

    def _ring_walks(self):
        from ..cluster.ring import HashRing

        ring = HashRing(range(self.n_nodes), vnodes=self.vnodes, seed=self.ring_seed)
        return tuple(
            tuple(ring.walk(f"req:{i}")) for i in range(self.n_requests)
        )


@dataclass(frozen=True)
class ProtocolWitness:
    """One protocol violation with its shortest counterexample trace.

    ``kind`` is one of ``"double-termination"`` (a request terminated
    twice), ``"dropped-reroute"`` (a lost flight was dropped with no
    failover or deadline outcome reachable), ``"stuck-request"`` (a
    terminal state holds an unterminated request), ``"livelock"`` (a
    reachable state from which no fair continuation terminates every
    request), and ``"replication-prefix"`` (router replica set is not a
    walk prefix).  ``trace`` is the shortest transition path from the
    initial state (BFS order), one human-readable label per step.
    """

    kind: str
    detail: str
    trace: tuple = ()

    def format(self) -> str:
        lines = [
            f"WARNING: repro.verify.protocol: protocol violation ({self.kind})",
            f"  {self.detail}",
        ]
        if self.trace:
            lines.append(
                f"  Counterexample (shortest interleaving, {len(self.trace)} transitions):"
            )
            lines.extend(f"    #{i + 1} {step}" for i, step in enumerate(self.trace))
        return "\n".join(lines)


@dataclass
class ProtocolReport:
    """Outcome of one exhaustive exploration."""

    config: ProtocolConfig
    n_states: int = 0
    n_transitions: int = 0
    liveness_checked: bool = False
    witnesses: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.witnesses

    def format(self, max_witnesses: int = 4) -> str:
        shape = (
            f"{self.config.n_nodes} nodes / {self.config.n_requests} requests / "
            f"hedges<={self.config.max_hedges} / crashes<={self.config.crash_budget}"
        )
        if self.ok:
            live = " + livelock-freedom" if self.liveness_checked else ""
            return (
                f"protocol safe{live}: {self.n_states} states, "
                f"{self.n_transitions} transitions explored exhaustively ({shape})"
            )
        head = [f"{len(self.witnesses)} violation(s) in {self.n_states} states ({shape})"]
        head += [w.format() for w in self.witnesses[:max_witnesses]]
        if len(self.witnesses) > max_witnesses:
            head.append(f"  ... and {len(self.witnesses) - max_witnesses} more")
        return "\n".join(head)


# ----------------------------------------------------------------------
# the abstract transition system
# ----------------------------------------------------------------------
#
# Request state (hashable tuples, interned to small ints for speed):
#   ('q',)                      queued (admitted, not yet dispatched)
#   ('f', copies, hedges)       in flight on `copies` (sorted node tuple)
#   ('l', hedges)               lost: every copy crashed, failover pending
#   ('d', outcome, residual)    terminated; `residual` = hedge copies
#                               still in flight whose completions must
#                               be *discarded*, not re-terminated
#   ('x',)                      dropped by the drop_failover planted bug
#
# Node component: (phases, budget) with phases[n] in "udsj" and budget
# the remaining global crash allowance.  'd' (crashed, still believed
# up for one suspicion window) routes like a live node but refuses the
# connect — exactly the service's fast-failover path — so routing skips
# it; 's' is the post-suspicion view.  Recovery returns to 'u'.


def _route(walk, phases, exclude=()):
    """First actually-up node on the walk (the model's `_route`/`pick`).

    Believed-up-but-crashed candidates ('d') refuse the connect and the
    walk continues; suspected ('s') and unjoined ('j') nodes are
    skipped by the router's liveness predicate.  Net effect either way:
    the first *up* node not excluded, or None.
    """
    for n in walk:
        if phases[n] in _UP and n not in exclude:
            return n
    return None


class _Explorer:
    """Table-driven successor generation over interned state codes.

    A state is ``(req_code_0, ..., req_code_{R-1}, node_code)``.  The
    per-request and node-level transition relations are tiny (tens of
    entries), so they are memoized once and the BFS proper only does
    dict lookups and tuple surgery.
    """

    def __init__(self, cfg: ProtocolConfig):
        self.cfg = cfg
        self._renc: dict = {}
        self._rdec: list = []
        self._nenc: dict = {}
        self._ndec: list = []
        self._req_succ: dict = {}  # (req_i, rs_code, nc_code) -> transitions
        self._node_succ: dict = {}  # nc_code -> transitions
        self._crash_eff: dict = {}  # (rs_code, node) -> (rs_code', violation)

    # -- interning ------------------------------------------------------
    def _enc_req(self, rs):
        code = self._renc.get(rs)
        if code is None:
            code = len(self._rdec)
            self._renc[rs] = code
            self._rdec.append(rs)
        return code

    def _enc_node(self, nc):
        code = self._nenc.get(nc)
        if code is None:
            code = len(self._ndec)
            self._nenc[nc] = code
            self._ndec.append(nc)
        return code

    def initial_state(self):
        cfg = self.cfg
        phases = ["u"] * cfg.n_nodes
        for n in range(cfg.n_nodes - cfg.delayed_joins, cfg.n_nodes):
            phases[n] = "j"
        q = self._enc_req(("q",))
        nc = self._enc_node((tuple(phases), cfg.crash_budget))
        return (q,) * cfg.n_requests + (nc,)

    def is_final(self, state) -> bool:
        """All requests terminated with every duplicate copy drained."""
        for code in state[:-1]:
            rs = self._rdec[code]
            if rs[0] != "d" or rs[2]:
                return False
        return True

    # -- per-request transitions ---------------------------------------
    def _req_transitions(self, i, rs_code, nc_code):
        key = (i, rs_code, nc_code)
        cached = self._req_succ.get(key)
        if cached is not None:
            return cached
        cfg = self.cfg
        rs = self._rdec[rs_code]
        phases, _ = self._ndec[nc_code]
        walk = cfg.walks[i]
        out = []
        kind = rs[0]
        if kind == "q":
            n = _route(walk, phases)
            if n is not None:
                out.append((("dispatch", i, n), self._enc_req(("f", (n,), 0)), None))
            # the deadline can expire while queued (node busy / backlog)
            out.append(
                (("deadline", i, None), self._enc_req(("d", "deadline_miss", ())), None)
            )
        elif kind == "f":
            copies, hedges = rs[1], rs[2]
            for n in copies:
                if phases[n] in _UP:
                    residual = tuple(c for c in copies if c != n)
                    out.append(
                        (("complete", i, n), self._enc_req(("d", "served", residual)), None)
                    )
            if hedges < cfg.max_hedges:
                n2 = _route(walk, phases, exclude=copies)
                if n2 is not None:
                    grown = tuple(sorted(copies + (n2,)))
                    out.append(
                        (("hedge", i, n2), self._enc_req(("f", grown, hedges + 1)), None)
                    )
        elif kind == "l":
            hedges = rs[1]
            n = _route(walk, phases)
            if n is not None:
                out.append(
                    (("failover", i, n), self._enc_req(("f", (n,), hedges)), None)
                )
            out.append(
                (("deadline", i, None), self._enc_req(("d", "deadline_miss", ())), None)
            )
        elif kind == "d":
            outcome, residual = rs[1], rs[2]
            for n in residual:
                if phases[n] in _UP:
                    rest = tuple(c for c in residual if c != n)
                    viol = "double-termination" if cfg.dual_dispatch else None
                    out.append(
                        (("discard", i, n), self._enc_req(("d", outcome, rest)), viol)
                    )
        # 'x' (dropped) has no transitions: the request is stranded
        out = tuple(out)
        self._req_succ[key] = out
        return out

    # -- node-level transitions ----------------------------------------
    def _node_transitions(self, nc_code):
        cached = self._node_succ.get(nc_code)
        if cached is not None:
            return cached
        cfg = self.cfg
        phases, budget = self._ndec[nc_code]
        out = []
        for n, ph in enumerate(phases):
            if ph == "u" and n != 0 and budget > 0:
                nxt = phases[:n] + ("d",) + phases[n + 1 :]
                out.append((("crash", None, n), self._enc_node((nxt, budget - 1)), n))
            elif ph == "d":
                nxt = phases[:n] + ("s",) + phases[n + 1 :]
                out.append((("suspect", None, n), self._enc_node((nxt, budget)), None))
                if cfg.allow_recover:
                    nxt = phases[:n] + ("u",) + phases[n + 1 :]
                    out.append((("recover", None, n), self._enc_node((nxt, budget)), None))
            elif ph == "s" and cfg.allow_recover:
                nxt = phases[:n] + ("u",) + phases[n + 1 :]
                out.append((("recover", None, n), self._enc_node((nxt, budget)), None))
            elif ph == "j":
                nxt = phases[:n] + ("u",) + phases[n + 1 :]
                out.append((("join", None, n), self._enc_node((nxt, budget)), None))
        out = tuple(out)
        self._node_succ[nc_code] = out
        return out

    def _crash_effect(self, rs_code, node):
        """A crash of `node` seen by one request: lose its copies there."""
        key = (rs_code, node)
        cached = self._crash_eff.get(key)
        if cached is not None:
            return cached
        rs = self._rdec[rs_code]
        result = (rs_code, None)
        if rs[0] == "f" and node in rs[1]:
            remaining = tuple(c for c in rs[1] if c != node)
            if remaining:
                result = (self._enc_req(("f", remaining, rs[2])), None)
            elif self.cfg.drop_failover:
                result = (self._enc_req(("x",)), "dropped-reroute")
            else:
                result = (self._enc_req(("l", rs[2])), None)
        elif rs[0] == "d" and node in rs[2]:
            rest = tuple(c for c in rs[2] if c != node)
            result = (self._enc_req(("d", rs[1], rest)), None)
        self._crash_eff[key] = result
        return result

    def successors(self, state):
        """Yield ``(edge, next_state, violation_kind_or_None)``."""
        nc_code = state[-1]
        reqs = state[:-1]
        for edge, nc2, crashed in self._node_transitions(nc_code):
            if crashed is None:
                yield edge, reqs + (nc2,), None
            else:
                new = list(reqs)
                viol = None
                for i, rc in enumerate(reqs):
                    rc2, v = self._crash_effect(rc, crashed)
                    new[i] = rc2
                    if v is not None and viol is None:
                        viol = (v, i, crashed)
                yield edge, tuple(new) + (nc2,), viol
        for i, rc in enumerate(reqs):
            for edge, rc2, v in self._req_transitions(i, rc, nc_code):
                viol = None if v is None else (v, i, edge[2])
                yield edge, reqs[:i] + (rc2,) + reqs[i + 1 :] + (state[-1],), viol


def _fmt_edge(edge) -> str:
    kind, req, node = edge
    if kind in ("dispatch", "hedge", "failover"):
        return f"{kind}(req {req} -> node {node})"
    if kind in ("complete", "discard"):
        verb = "complete" if kind == "complete" else "discard duplicate"
        return f"{verb}(req {req} on node {node})"
    if kind == "deadline":
        return f"deadline(req {req})"
    if kind in ("crash", "suspect", "recover", "join"):
        return f"{kind}(node {node})"
    return f"{kind}({req}, {node})"


def _viol_detail(viol) -> str:
    kind, req, node = viol
    if kind == "double-termination":
        return (
            f"request {req} terminated a second time by a duplicate completion "
            f"on node {node} (hedged copies must be discarded after the winner)"
        )
    if kind == "dropped-reroute":
        return (
            f"request {req} lost to the crash of node {node} was dropped: no "
            f"failover or deadline outcome is reachable (drop_failover path)"
        )
    return kind


def model_check(
    cfg: ProtocolConfig | None = None,
    *,
    liveness: bool = False,
    stop_on_first: bool = False,
    max_states: int = 4_000_000,
) -> ProtocolReport:
    """Exhaustively explore the abstract protocol and check every invariant.

    BFS over the reachable state graph; parent pointers give shortest
    counterexample traces.  With ``liveness=True`` the forward sweep
    additionally records the successor relation and then proves, by
    backward reachability from the all-terminated states, that every
    reachable state can still terminate every request (livelock
    freedom under fairness — the scheduler that always eventually picks
    an enabled terminating transition).  ``stop_on_first`` returns at
    the first violation (used for the planted-bug gates, where the
    witness, not the census, is the point).
    """
    cfg = cfg or ProtocolConfig()
    ex = _Explorer(cfg)
    report = ProtocolReport(config=cfg)
    init = ex.initial_state()
    parent: dict = {init: None}
    succ_ids: list = [] if liveness else None
    ids: dict = {init: 0} if liveness else None
    states_by_id: list = [init] if liveness else None
    frontier = deque([init])
    n_edges = 0
    violated_edges = set()

    def trace_to(state, last_edge=None):
        steps = []
        cur = state
        while parent[cur] is not None:
            prev, edge = parent[cur]
            steps.append(_fmt_edge(edge))
            cur = prev
        steps.reverse()
        if last_edge is not None:
            steps.append(_fmt_edge(last_edge))
        return tuple(steps)

    while frontier:
        state = frontier.popleft()
        out_degree = 0
        my_succ = [] if liveness else None
        for edge, nxt, viol in ex.successors(state):
            n_edges += 1
            out_degree += 1
            if viol is not None:
                # dedupe per (kind, request): one shortest witness each
                sig = viol[:2]
                if sig not in violated_edges:
                    violated_edges.add(sig)
                    report.witnesses.append(
                        ProtocolWitness(
                            kind=viol[0],
                            detail=_viol_detail(viol),
                            trace=trace_to(state, edge),
                        )
                    )
                    if stop_on_first:
                        report.n_states = len(parent)
                        report.n_transitions = n_edges
                        return report
            if nxt not in parent:
                if len(parent) >= max_states:
                    raise RuntimeError(
                        f"state space exceeds max_states={max_states}; "
                        f"shrink the ProtocolConfig"
                    )
                parent[nxt] = (state, edge)
                frontier.append(nxt)
                if liveness:
                    ids[nxt] = len(states_by_id)
                    states_by_id.append(nxt)
                    succ_ids.append(None)  # filled when expanded
            if liveness:
                my_succ.append(ids[nxt])
        if liveness:
            sid = ids[state]
            while len(succ_ids) <= sid:
                succ_ids.append(None)
            succ_ids[sid] = my_succ
        if out_degree == 0 and not ex.is_final(state):
            # a genuinely stuck state: some request can never terminate
            stuck = [
                i
                for i, code in enumerate(state[:-1])
                if ex._rdec[code][0] != "d" or ex._rdec[code][2]
            ]
            report.witnesses.append(
                ProtocolWitness(
                    kind="stuck-request",
                    detail=(
                        f"terminal state with unterminated request(s) {stuck}: "
                        f"no transition is enabled"
                    ),
                    trace=trace_to(state),
                )
            )
            if stop_on_first:
                report.n_states = len(parent)
                report.n_transitions = n_edges
                return report

    report.n_states = len(parent)
    report.n_transitions = n_edges

    if liveness:
        # backward reachability from the good (all-terminated) states
        n = len(states_by_id)
        preds: list = [[] for _ in range(n)]
        for sid, outs in enumerate(succ_ids):
            for t in outs or ():
                preds[t].append(sid)
        can_finish = bytearray(n)
        work = deque()
        for sid, state in enumerate(states_by_id):
            if ex.is_final(state):
                can_finish[sid] = 1
                work.append(sid)
        while work:
            sid = work.popleft()
            for p in preds[sid]:
                if not can_finish[p]:
                    can_finish[p] = 1
                    work.append(p)
        report.liveness_checked = True
        for sid in range(n):
            if not can_finish[sid]:
                state = states_by_id[sid]
                stuck = [
                    i for i, code in enumerate(state[:-1]) if ex._rdec[code][0] != "d"
                ]
                report.witnesses.append(
                    ProtocolWitness(
                        kind="livelock",
                        detail=(
                            f"reachable state from which request(s) {stuck} can "
                            f"never terminate under any fair continuation"
                        ),
                        trace=trace_to(state),
                    )
                )
                break  # one witness suffices; the rest are reachable from it
    return report


# ----------------------------------------------------------------------
# abstraction cross-check: replay a real ClusterService protocol trace
# ----------------------------------------------------------------------


@dataclass
class ConformanceReport:
    """Did a recorded real trace stay inside the abstract transition system?"""

    n_events: int = 0
    n_jobs: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        if self.ok:
            return (
                f"trace conforms: {self.n_events} protocol events over "
                f"{self.n_jobs} dispatched jobs replay in the abstract model"
            )
        head = [f"{len(self.violations)} conformance violation(s):"]
        head += [f"  {v}" for v in self.violations[:8]]
        return "\n".join(head)


def check_cluster_trace(events, *, n_nodes, up_at_start=None) -> ConformanceReport:
    """Replay a ``ClusterService.protocol_trace`` through the abstract rules.

    ``events`` is the list the service records: ``("dispatch", t, bid,
    node, is_hedge)``, ``("complete"|"duplicate"|"lose", t, bid,
    node)``, ``("deadline"|"reject", t, bid)``, ``("crash"|"recover"|
    "join", t, node)``.  Events are replayed in virtual-time order
    (stable for ties, which the event loop already emits in causal
    order).  Every event must be an enabled transition of the abstract
    protocol given the state built so far — so any real behavior
    outside the model (a dispatch to a down node, a second termination,
    a lost job that never resolves) is reported, which is what makes
    the model checker's "passes on the real protocol" claim sound.
    """
    rep = ConformanceReport(n_events=len(events))
    up = {
        n: True if up_at_start is None else bool(up_at_start(n))
        for n in range(n_nodes)
    }
    jobs: dict = {}  # bid -> {"copies": set, "state": "inflight"|"lost"|"done"}
    for ev in sorted(events, key=lambda e: e[1]):
        kind, _t = ev[0], ev[1]
        if kind in ("crash", "recover", "join"):
            up[ev[2]] = kind != "crash"
            continue
        bid = ev[2]
        job = jobs.get(bid)
        if kind == "dispatch":
            node, is_hedge = ev[3], ev[4]
            if not up.get(node, False):
                rep.violations.append(
                    f"job {bid}: dispatched to node {node} while it is down"
                )
            if job is None:
                if is_hedge:
                    rep.violations.append(f"job {bid}: first dispatch marked as hedge")
                jobs[bid] = {"copies": {node}, "state": "inflight"}
            elif job["state"] == "lost" and not is_hedge:
                job["copies"] = {node}
                job["state"] = "inflight"
            elif job["state"] == "inflight" and is_hedge:
                if node in job["copies"]:
                    rep.violations.append(
                        f"job {bid}: hedge re-dispatched to node {node} already in flight"
                    )
                job["copies"].add(node)
            else:
                rep.violations.append(
                    f"job {bid}: dispatch while {job['state']}"
                    + ("" if is_hedge else " without a lost flight (dual dispatch)")
                )
        elif kind in ("complete", "duplicate", "lose"):
            node = ev[3]
            if job is None or node not in job["copies"]:
                rep.violations.append(f"job {bid}: {kind} on node {node} with no flight there")
                continue
            job["copies"].discard(node)
            if kind == "complete":
                if job["state"] == "done":
                    rep.violations.append(
                        f"job {bid}: second termination by completion on node {node}"
                    )
                job["state"] = "done"
            elif kind == "duplicate":
                if job["state"] != "done":
                    rep.violations.append(
                        f"job {bid}: duplicate discarded before any completion"
                    )
            else:  # lose
                if job["state"] == "inflight" and not job["copies"]:
                    job["state"] = "lost"
        elif kind in ("deadline", "reject"):
            if job is None:
                # a batch can expire or be rejected before its first
                # dispatch (queued deadline; cluster-down backpressure)
                jobs[bid] = {"copies": set(), "state": "done"}
            elif job["state"] == "lost" or (kind == "reject" and job["state"] != "done"):
                job["state"] = "done"
            else:
                rep.violations.append(f"job {bid}: {kind} while {job['state']}")
        else:
            rep.violations.append(f"unknown protocol event kind {kind!r}")
    rep.n_jobs = len(jobs)
    for bid, job in sorted(jobs.items()):
        if job["state"] != "done":
            rep.violations.append(
                f"job {bid}: never terminated (final state {job['state']!r})"
            )
    return rep


# ----------------------------------------------------------------------
# the router-level invariant: replicas are a walk prefix
# ----------------------------------------------------------------------


def check_replication_prefix(
    *,
    n_nodes: int = 5,
    replication: int = 3,
    vnodes: int = 32,
    seed: int = 0,
    hot_promote: int = 3,
    n_fingerprints: int = 64,
) -> list:
    """Check replicas(fp) == walk(fp)[:k] for hot and cold fingerprints.

    The walk order doubles as the failover order, so this prefix
    property is what guarantees a re-warmed replica is always on a node
    the failover path will actually try.  Returns violation strings
    (empty = proven for this membership / seed / promotion schedule).
    """
    from ..cluster.ring import Router

    router = Router(
        range(n_nodes),
        replication=replication,
        vnodes=vnodes,
        seed=seed,
        hot_promote=hot_promote,
    )
    violations = []
    fps = [f"fp:{i}" for i in range(n_fingerprints)]
    for i, fp in enumerate(fps):
        # promote every third fingerprint to the hot set
        for _ in range(hot_promote if i % 3 == 0 else 1):
            router.observe(fp)
    for fp in fps:
        walk = router.ring.walk(fp)
        reps = router.replicas(fp)
        k = replication if router.is_hot(fp) else 1
        if list(reps) != list(walk[:k]):
            violations.append(
                f"{fp}: replicas {list(reps)} != walk prefix {list(walk[:k])} "
                f"(hot={router.is_hot(fp)})"
            )
        if len(set(reps)) != len(reps):
            violations.append(f"{fp}: replica set has duplicates: {list(reps)}")
    return violations


# ----------------------------------------------------------------------
# chrome-trace export of witnesses
# ----------------------------------------------------------------------


def witness_trace_events(witness: ProtocolWitness, *, pid: int = 7, n_nodes: int = 3):
    """Render a counterexample as chrome-trace lanes (one per node).

    Each transition becomes an instant on the lane of the node it
    touches (request-only transitions land on a ``protocol`` lane),
    spaced 1 us apart in trace order — the same navigable timeline
    view the cluster bench exports, for stepping through a violation.
    Compatible with :func:`repro.obs.write_chrome_trace`.
    """
    from ..obs.chrome_trace import transition_lane_events

    steps = []
    for i, label in enumerate(witness.trace):
        lane = n_nodes  # the request-level "protocol" lane
        if "node " in label:
            try:
                lane = int(label.rsplit("node ", 1)[1].rstrip(")"))
            except ValueError:
                lane = n_nodes
        steps.append((i, lane, label))
    lanes = {n: f"node {n}" for n in range(n_nodes)}
    lanes[n_nodes] = "protocol"
    return transition_lane_events(
        steps, pid=pid, cat="verify.protocol", lane_names=lanes,
        title=f"violation: {witness.kind}",
    )
