"""Entry point: ``python -m repro.verify``."""

import sys

from .cli import main

sys.exit(main())
