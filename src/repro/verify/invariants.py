"""Structural invariant validators for the framework's core objects.

Every kernel in the repo leans on unstated structural assumptions:
sorted, duplicate-free column indices (the merge-style row updates),
a monotone ``indptr`` that starts at 0 and ends at ``nnz``, a
structurally present diagonal wherever a pivot is read, level
structures that really are topological stratifications, and — since the
symbolic cache shares one analysis across factor/solve cycles and
threads — cached arrays that nobody mutates.  This module makes each
assumption an executable check with a precise failure message.

``validate(obj)`` dispatches on type (:class:`~repro.sparse.csr.CSRMatrix`,
:class:`~repro.sparse.csc.CSCMatrix`,
:class:`~repro.ordering.levelsets.LevelSets`,
:class:`~repro.kernels.plans.TriSolvePlan`,
:class:`~repro.kernels.cache.SymbolicAnalysis`) and raises
:class:`InvariantViolation` on the first failure.

:func:`enable_debug_validation` wires the validators into the hot paths
as optional debug hooks: every :func:`repro.kernels.get_kernel` dispatch
validates its matrix/plan arguments, and every
:class:`~repro.kernels.cache.SymbolicCache` lookup validates the entry
it returns (including the frozen-arrays rule, so a mutated cached array
is caught at the next lookup).  The hooks are off by default — they are
sanitizers, not production costs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "InvariantViolation",
    "validate",
    "validate_csr",
    "validate_csc",
    "validate_levels",
    "validate_plan",
    "validate_analysis",
    "enable_debug_validation",
    "disable_debug_validation",
]


class InvariantViolation(ValueError):
    """A structural invariant does not hold; message names the witness."""


def _fail(name: str, message: str) -> None:
    raise InvariantViolation(f"{name}: {message}")


def _check_compressed(name, indptr, indices, n_major, n_minor, *, sorted_unique=True):
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    if indptr.shape[0] != n_major + 1:
        _fail(name, f"indptr length {indptr.shape[0]} != {n_major + 1}")
    if n_major >= 0 and indptr.shape[0] and int(indptr[0]) != 0:
        _fail(name, f"indptr[0] = {int(indptr[0])}, must be 0")
    d = np.diff(indptr)
    if np.any(d < 0):
        i = int(np.nonzero(d < 0)[0][0])
        _fail(name, f"indptr decreases at position {i}")
    if int(indptr[-1]) != indices.shape[0]:
        _fail(name, f"indptr[-1] = {int(indptr[-1])} != nnz = {indices.shape[0]}")
    if indices.size and (int(indices.min()) < 0 or int(indices.max()) >= n_minor):
        _fail(name, f"index out of range [0, {n_minor})")
    if sorted_unique:
        for i in range(n_major):
            seg = indices[int(indptr[i]) : int(indptr[i + 1])]
            if seg.shape[0] > 1 and np.any(seg[1:] <= seg[:-1]):
                k = int(np.nonzero(seg[1:] <= seg[:-1])[0][0])
                what = "duplicate" if seg[k + 1] == seg[k] else "unsorted"
                _fail(name, f"{what} indices in major slot {i} (… {int(seg[k])}, {int(seg[k + 1])} …)")


def validate_csr(M: Any, *, require_diagonal: bool = False, name: str = "CSRMatrix") -> bool:
    """Sorted/unique columns, monotone indptr, optional full diagonal."""
    _check_compressed(name, M.indptr, M.indices, M.n_rows, M.n_cols)
    if np.asarray(M.data).shape[0] != np.asarray(M.indices).shape[0]:
        _fail(name, "data and indices lengths disagree")
    if require_diagonal:
        indptr, indices = M.indptr, M.indices
        for r in range(min(M.n_rows, M.n_cols)):
            seg = indices[int(indptr[r]) : int(indptr[r + 1])]
            k = int(np.searchsorted(seg, r))
            if k == seg.shape[0] or int(seg[k]) != r:
                _fail(name, f"diagonal entry ({r}, {r}) structurally absent "
                            "(kernels divide by it)")
    return True


def validate_csc(M: Any, *, name: str = "CSCMatrix") -> bool:
    """CSC mirror of :func:`validate_csr` (rows sorted within a column)."""
    _check_compressed(name, M.indptr, M.indices, M.n_cols, M.n_rows)
    if np.asarray(M.data).shape[0] != np.asarray(M.indices).shape[0]:
        _fail(name, "data and indices lengths disagree")
    return True


def validate_levels(ls: Any, L: Any = None, *, name: str = "LevelSets") -> bool:
    """level_ptr / level_of / rows mutual consistency (+ optional DAG check).

    With ``L`` (a lower-triangular dependency pattern) the full
    topological-stratification property is checked too — every row's
    level must exceed the levels of all its strict-lower dependencies.
    """
    level_of = np.asarray(ls.level_of)
    level_ptr = np.asarray(ls.level_ptr)
    rows = np.asarray(ls.rows)
    n = rows.shape[0]
    if level_of.shape[0] != n:
        _fail(name, f"level_of length {level_of.shape[0]} != n_rows {n}")
    if np.any(np.diff(level_ptr) < 0):
        _fail(name, "level_ptr not monotone")
    if level_ptr.shape[0] == 0 or int(level_ptr[0]) != 0 or int(level_ptr[-1]) != n:
        _fail(name, "level_ptr endpoints must be 0 and n_rows")
    if not np.array_equal(np.sort(rows), np.arange(n)):
        _fail(name, "rows is not a permutation of 0..n-1")
    n_levels = level_ptr.shape[0] - 1
    if n and (int(level_of.min()) < 0 or int(level_of.max()) >= n_levels):
        _fail(name, "level_of value outside [0, n_levels)")
    for lvl in range(n_levels):
        grp = rows[int(level_ptr[lvl]) : int(level_ptr[lvl + 1])]
        if np.any(level_of[grp] != lvl):
            _fail(name, f"rows grouped under level {lvl} carry a different level_of")
    if L is not None:
        indptr, indices = L.indptr, L.indices
        for r in range(n):
            cols = indices[int(indptr[r]) : int(indptr[r + 1])]
            deps = cols[cols < r]
            if deps.size and int(level_of[r]) <= int(level_of[deps].max()):
                _fail(name, f"row {r}: level not strictly above its dependencies")
    return True


def validate_plan(plan: Any, pattern: Any = None, *, name: str = "TriSolvePlan") -> bool:
    """Internal consistency of a batched triangular-sweep plan."""
    if plan.part not in ("lower", "upper"):
        _fail(name, f"unknown part {plan.part!r}")
    n = int(plan.n)
    rows = np.asarray(plan.rows)
    if not np.array_equal(np.sort(rows), np.arange(n)):
        _fail(name, "rows is not a permutation")
    if np.any(np.diff(plan.level_ptr) < 0) or int(plan.level_ptr[-1]) != n:
        _fail(name, "level_ptr not monotone or does not cover all rows")
    if np.any(np.diff(plan.lev_ent_ptr) < 0):
        _fail(name, "lev_ent_ptr not monotone")
    if int(plan.lev_ent_ptr[-1]) != np.asarray(plan.ent_idx).shape[0]:
        _fail(name, "lev_ent_ptr[-1] != number of plan entries")
    if np.asarray(plan.ent_local).shape[0] != np.asarray(plan.ent_idx).shape[0]:
        _fail(name, "ent_local and ent_idx lengths disagree")
    if plan.part == "upper" and plan.diag_idx is None:
        _fail(name, "upper plan is missing diag_idx")
    if pattern is not None:
        nnz = int(np.asarray(pattern.indptr)[-1])
        ent = np.asarray(plan.ent_idx)
        if ent.size and (int(ent.min()) < 0 or int(ent.max()) >= nnz):
            _fail(name, "ent_idx outside the pattern's storage")
        if plan.diag_idx is not None:
            di = np.asarray(plan.diag_idx)
            if di.size and (int(di.min()) < 0 or int(di.max()) >= nnz):
                _fail(name, "diag_idx outside the pattern's storage")
    return True


def _assert_frozen(arr: Any, what: str, name: str) -> None:
    if isinstance(arr, np.ndarray) and arr.flags.writeable:
        _fail(name, f"cached array {what} is writeable — cache entries must be "
                    "frozen (ndarray.flags.writeable = False)")


def validate_analysis(ana: Any, *, name: str = "SymbolicAnalysis") -> bool:
    """Cached symbolic products are structurally valid *and* frozen.

    Walks every product already materialized in the analysis' memo (it
    never forces a build) and checks (a) the per-type invariants above
    and (b) that every ndarray is read-only, so an accidental in-place
    mutation of a shared cache entry is caught at the next lookup.
    """
    from ..kernels.cache import SymbolicAnalysis  # noqa: F401  (type anchor)
    from ..kernels.plans import TriSolvePlan
    from ..ordering.levelsets import LevelSets
    from ..sched.elastic import ElasticSchedule
    from ..sched.superstep import SuperstepPlan, validate_superstep_plan

    pat = getattr(ana, "_pattern", None)
    if pat is not None:
        validate_csr(pat, name=f"{name}._pattern")
    for key, value in list(getattr(ana, "_memo", {}).items()):
        where = f"{name}[{key!r}]"
        items = value if isinstance(value, tuple) else (value,)
        for item in items:
            if isinstance(item, np.ndarray):
                _assert_frozen(item, key, name)
            elif isinstance(item, LevelSets):
                validate_levels(item, name=where)
                for f in ("level_of", "level_ptr", "rows"):
                    _assert_frozen(getattr(item, f), f"{key}.{f}", name)
            elif isinstance(item, TriSolvePlan):
                validate_plan(item, pat, name=where)
                for f in ("rows", "level_ptr", "ent_idx", "ent_local", "lev_ent_ptr", "diag_idx"):
                    _assert_frozen(getattr(item, f), f"{key}.{f}", name)
            elif isinstance(item, SuperstepPlan):
                if pat is not None:
                    errs = validate_superstep_plan(item, pat)
                    if errs:
                        _fail(where, errs[0])
                for f in ("rows", "step_ptr", "thread_ptr", "thread_of", "step_of",
                          "level_of", "ent_idx", "ent_local", "diag_idx"):
                    arr = getattr(item, f, None)
                    if arr is not None:
                        _assert_frozen(arr, f"{key}.{f}", name)
            elif isinstance(item, ElasticSchedule):
                if pat is not None:
                    from .deadlock import check_elastic_schedule

                    rep = check_elastic_schedule(item, pat)
                    if not rep.ok:
                        first = rep.witnesses[0].detail if rep.witnesses else rep.errors[0]
                        _fail(where, first)
                for f in ("rows", "level_of", "level_ptr", "block_of",
                          "final_sweep", "ent_ptr", "ent_idx", "diag_idx"):
                    arr = getattr(item, f, None)
                    if arr is not None:
                        _assert_frozen(arr, f"{key}.{f}", name)
    return True


def validate(obj: Any, **kw: Any) -> bool:
    """Type-dispatched validation; raises :class:`InvariantViolation`."""
    from ..kernels.cache import SymbolicAnalysis
    from ..kernels.plans import TriSolvePlan
    from ..ordering.levelsets import LevelSets
    from ..sparse.csc import CSCMatrix
    from ..sparse.csr import CSRMatrix

    if isinstance(obj, CSRMatrix):
        return validate_csr(obj, **kw)
    if isinstance(obj, CSCMatrix):
        return validate_csc(obj, **kw)
    if isinstance(obj, LevelSets):
        return validate_levels(obj, **kw)
    if isinstance(obj, TriSolvePlan):
        return validate_plan(obj, **kw)
    if isinstance(obj, SymbolicAnalysis):
        return validate_analysis(obj, **kw)
    raise TypeError(f"no invariant validator for {type(obj).__name__}")


# ----------------------------------------------------------------------
# debug hooks: wire the validators into kernel dispatch + cache lookups
# ----------------------------------------------------------------------
def _kernel_argument_validator(name, backend, args, kwargs):
    from ..kernels.plans import TriSolvePlan
    from ..sparse.csr import CSRMatrix

    for a in list(args) + list(kwargs.values()):
        if isinstance(a, CSRMatrix):
            validate_csr(a, name=f"kernel {name}/{backend} CSR argument")
        elif isinstance(a, TriSolvePlan):
            validate_plan(a, name=f"kernel {name}/{backend} plan argument")


def enable_debug_validation() -> None:
    """Install the invariant validators on the hot-path hooks."""
    from ..kernels import cache, registry

    registry.set_kernel_validator(_kernel_argument_validator)
    cache.set_validation_hook(validate_analysis)


def disable_debug_validation() -> None:
    """Remove the hooks installed by :func:`enable_debug_validation`."""
    from ..kernels import cache, registry

    registry.set_kernel_validator(None)
    cache.set_validation_hook(None)
