"""Happens-before race detector for p2p schedules and execution traces.

Javelin's upper stage synchronizes with one monotonic progress counter
per thread (§III-A): a consumer of row ``c`` spins until ``c``'s owner
has *published* a row ``>= c``, and the owner publishes its rows in
ascending order.  The claim that this is *sufficient* is a
happens-before argument, and this module checks it the way a dynamic
race detector (TSan) would: replay the schedule with one vector clock
per thread, join clocks along every ``publish → wait_for`` edge the
schedule actually performs, and report any read of row ``c`` during the
factorization of row ``r`` that is not ordered after ``c``'s completion.

Two entry points:

* :func:`replay_schedule` — verify a (pattern, row→thread map) pair
  directly, using the *implementation's own* pruned sync set
  (:func:`repro.kernels.plans.build_producer_csr`) unless an explicit
  one is supplied.  A :class:`repro.resilience.FaultPlan` layers dropped
  publishes on top: a dropped publish with a later surviving cover only
  delays the join; a dropped *last* publish removes it, and every read
  that relied on it is reported as a race (the watchdog read of the DES
  — memory was written, but nothing orders the read after the write).
* :func:`replay_trace` — reconstruct the schedule from a
  :class:`repro.machine.trace.ExecutionTrace` event log (per-thread
  execution order from interval starts) and verify it, plus a timing
  cross-check that no read starts before its dependency's interval ends.

Witnesses carry file-able detail (consumer row/thread, producing
row/thread, per-thread sequence numbers and the clock value observed),
formatted like a sanitizer report by :meth:`RaceReport.format`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RaceWitness",
    "RaceReport",
    "thread_sequences",
    "sync_edges_from_producer_csr",
    "replay_schedule",
    "replay_superstep_schedule",
    "replay_trace",
]


@dataclass(frozen=True)
class RaceWitness:
    """One unordered (or otherwise illegal) memory access.

    ``kind`` is one of ``"missing-sync"`` (no publish/wait edge orders
    the read), ``"dropped-publish"`` (the ordering edge existed but its
    notification was dropped with no surviving cover), ``"program-order"``
    (same-thread rows executed out of ascending order — the monotonic
    counter contract is broken), ``"unsound-sync"`` (a sync edge names a
    row its producer thread does not own), and ``"timing"`` (a trace
    interval starts before a dependency's interval ends).
    """

    kind: str
    row: int
    dep: int
    thread: int
    dep_thread: int
    detail: str = ""

    def format(self) -> str:
        lines = [
            f"WARNING: repro.verify.races: data race ({self.kind})",
            f"  Read of row {self.dep} during factorization of row {self.row} "
            f"on thread {self.thread}",
            f"  Previous write: completion of row {self.dep} on thread {self.dep_thread}",
        ]
        if self.detail:
            lines.append(f"  {self.detail}")
        return "\n".join(lines)


@dataclass
class RaceReport:
    """Outcome of one happens-before replay."""

    n_rows: int
    n_threads: int
    n_sync_edges: int
    n_reads_checked: int = 0
    witnesses: list[RaceWitness] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.witnesses

    def format(self, max_witnesses: int = 8) -> str:
        if self.ok:
            return (
                f"race-free: {self.n_reads_checked} reads over {self.n_rows} rows / "
                f"{self.n_threads} threads ordered by {self.n_sync_edges} sync edges"
            )
        head = [
            f"{len(self.witnesses)} race(s) over {self.n_rows} rows / "
            f"{self.n_threads} threads ({self.n_sync_edges} sync edges)"
        ]
        head += [w.format() for w in self.witnesses[:max_witnesses]]
        if len(self.witnesses) > max_witnesses:
            head.append(f"  ... and {len(self.witnesses) - max_witnesses} more")
        return "\n".join(head)


def thread_sequences(thread_of: np.ndarray, m: int | None = None):
    """Per-thread ascending row lists and each row's sequence number.

    Returns ``(rows_of, seq_of)`` where ``rows_of[t]`` is thread ``t``'s
    rows in program (ascending-id) order and ``seq_of[r]`` is row ``r``'s
    0-based position in its owner's list — the value its owner's
    progress counter notionally takes after publishing it.
    """
    thread_of = np.asarray(thread_of, dtype=np.int64)
    if m is None:
        m = int(thread_of.shape[0])
    p = int(thread_of[:m].max()) + 1 if m else 1
    rows_of = [np.nonzero(thread_of[:m] == t)[0] for t in range(p)]
    seq_of = np.empty(m, dtype=np.int64)
    for t in range(p):
        seq_of[rows_of[t]] = np.arange(rows_of[t].shape[0], dtype=np.int64)
    return rows_of, seq_of


def sync_edges_from_producer_csr(ptr, prod_u, prod_latest):
    """Per-row ``{producer_thread: latest_row}`` dicts from the CSR triple."""
    m = int(ptr.shape[0]) - 1
    out: list[dict[int, int]] = []
    for r in range(m):
        out.append(
            {
                int(prod_u[j]): int(prod_latest[j])
                for j in range(int(ptr[r]), int(ptr[r + 1]))
            }
        )
    return out


def _default_sync(S, m, thread_of):
    from ..kernels.plans import build_producer_csr

    return sync_edges_from_producer_csr(*build_producer_csr(S, m, thread_of))


def _surviving_cover(rows_of_u, seq_dropped, fault_plan, u):
    """Sequence index of the next surviving publish of ``u``, or None."""
    for k in range(seq_dropped + 1, rows_of_u.shape[0]):
        if not fault_plan.is_dropped(u, int(rows_of_u[k])):
            return k
    return None


def replay_schedule(
    S,
    thread_of,
    *,
    m: int | None = None,
    sync=None,
    fault_plan=None,
) -> RaceReport:
    """Vector-clock replay of a p2p schedule; report unordered reads.

    Parameters
    ----------
    S:
        Pattern whose strict-lower entries are the true dependencies
        (the permuted factor pattern).
    thread_of:
        Row→thread map over rows ``0 .. m-1``; each thread executes its
        rows in ascending order (the implied ordering).
    sync:
        Per-row ``{producer_thread: latest_dep_row}`` wait sets.  When
        omitted, the implementation's pruned set is derived with
        :func:`repro.kernels.plans.build_producer_csr` — i.e. the replay
        verifies exactly what ``upper_p2p_sim`` and the threaded runtime
        execute.  Pass a tampered set to demonstrate detection.
    fault_plan:
        Optional :class:`repro.resilience.FaultPlan`; its ``dropped``
        publishes weaken the corresponding joins (see module docstring).
    """
    thread_of = np.asarray(thread_of, dtype=np.int64)
    if m is None:
        m = int(thread_of.shape[0])
    rows_of, seq_of = thread_sequences(thread_of, m)
    p = len(rows_of)
    if sync is None:
        sync = _default_sync(S, m, thread_of)
    n_sync = sum(len(s) for s in sync)
    report = RaceReport(n_rows=m, n_threads=p, n_sync_edges=n_sync)
    # clock[t][u]: how many of u's rows are ordered before t's next event
    clock = np.zeros((p, p), dtype=np.int64)
    # publish_clock[u][k]: u's clock right after completing its k-th row
    publish_clock: list[list[np.ndarray]] = [[] for _ in range(p)]
    indptr, indices = S.indptr, S.indices
    for r in range(m):
        t = int(thread_of[r])
        # --- joins: the waits this schedule actually performs ---------
        for u, need in sync[r].items():
            u = int(u)
            need = int(need)
            if u == t:
                continue  # program order; a self-wait would deadlock
            if need >= m or int(thread_of[need]) != u:
                report.witnesses.append(
                    RaceWitness(
                        kind="unsound-sync",
                        row=r,
                        dep=need,
                        thread=t,
                        dep_thread=u,
                        detail=f"sync edge waits on thread {u} for row {need}, "
                        f"which thread {u} does not own",
                    )
                )
                continue
            k = int(seq_of[need])
            if fault_plan is not None and fault_plan.is_dropped(u, need):
                k_cover = _surviving_cover(rows_of[u], k, fault_plan, u)
                if k_cover is None:
                    # dropped last publish: the waiter's watchdog fires and
                    # it reads without an ordering edge — no join happens
                    continue
                k = k_cover
            # the wait returns once u's counter passes `need`, i.e. after
            # u's k-th publish: join u's clock at that point
            clock[t] = np.maximum(clock[t], publish_clock[u][k])
        # --- read checks: every true dependency must be ordered -------
        cols = indices[indptr[r] : indptr[r + 1]]
        deps = cols[cols < r]
        for c in deps:
            c = int(c)
            u = int(thread_of[c])
            report.n_reads_checked += 1
            if u == t:
                if seq_of[c] >= seq_of[r]:
                    report.witnesses.append(
                        RaceWitness(
                            kind="program-order",
                            row=r,
                            dep=c,
                            thread=t,
                            dep_thread=u,
                            detail=f"same-thread rows out of order: seq({c})="
                            f"{int(seq_of[c])} >= seq({r})={int(seq_of[r])}",
                        )
                    )
                continue
            if clock[t][u] < seq_of[c] + 1:
                dropped = fault_plan is not None and fault_plan.is_dropped(u, c)
                # a dropped dependency that *was* covered would have joined;
                # reaching here with a dropped (u, row>=c) edge means the
                # watchdog read happened
                kind = "missing-sync"
                detail = (
                    f"consumer clock for thread {u} is {int(clock[t][u])}, "
                    f"needs >= {int(seq_of[c]) + 1} (seq of row {c})"
                )
                if fault_plan is not None:
                    need = sync[r].get(u)
                    if need is not None and fault_plan.is_dropped(u, int(need)):
                        kind = "dropped-publish"
                        detail += (
                            f"; publish ({u}, {int(need)}) dropped with no "
                            f"surviving cover"
                        )
                    elif dropped:
                        kind = "dropped-publish"
                report.witnesses.append(
                    RaceWitness(
                        kind=kind, row=r, dep=c, thread=t, dep_thread=u, detail=detail
                    )
                )
        # --- complete r: advance own component, snapshot the publish --
        clock[t][t] += 1
        publish_clock[t].append(clock[t].copy())
    return report


def replay_trace(trace, S, *, fault_plan=None) -> RaceReport:
    """Verify an :class:`~repro.machine.trace.ExecutionTrace` event log.

    The row→thread map and per-thread program order are reconstructed
    from the ``("row", r)``-labelled intervals; the per-thread order must
    be ascending in row id (the monotonic-counter contract), and the
    happens-before replay then runs exactly as :func:`replay_schedule`.
    A timing cross-check additionally reports any read whose interval
    starts before its dependency's interval ends — a corrupted or
    hand-edited trace fails even if its schedule is legal.
    """
    row_ivs = [iv for iv in trace.intervals if isinstance(iv.label, tuple) and iv.label[:1] == ("row",)]
    m = len(row_ivs)
    thread_of = np.empty(m, dtype=np.int64)
    start = np.empty(m)
    stop = np.empty(m)
    seen = np.zeros(m, dtype=bool)
    for iv in row_ivs:
        r = int(iv.label[1])
        if r < 0 or r >= m or seen[r]:
            raise ValueError(
                f"trace is not a complete single execution of rows 0..{m - 1} "
                f"(bad or duplicate row label {iv.label!r})"
            )
        seen[r] = True
        thread_of[r] = int(iv.thread)
        start[r] = iv.start
        stop[r] = iv.stop
    report_order = []
    # per-thread execution order from interval starts
    for t in range(trace.n_threads):
        rows_t = np.nonzero(thread_of == t)[0]
        order = rows_t[np.argsort(start[rows_t], kind="stable")]
        for a, b in zip(order, order[1:]):
            if int(b) < int(a):
                report_order.append(
                    RaceWitness(
                        kind="program-order",
                        row=int(a),
                        dep=int(b),
                        thread=t,
                        dep_thread=t,
                        detail=f"thread {t} ran row {int(a)} (start {start[a]:g}) "
                        f"before row {int(b)} — publishes would not be monotonic",
                    )
                )
    report = replay_schedule(S, thread_of, m=m, fault_plan=fault_plan)
    report.witnesses.extend(report_order)
    # timing cross-check against the true DAG
    indptr, indices = S.indptr, S.indices
    tol = 1e-12
    for r in range(m):
        cols = indices[indptr[r] : indptr[r + 1]]
        for c in cols[cols < r]:
            c = int(c)
            if int(thread_of[c]) == int(thread_of[r]):
                continue
            if start[r] < stop[c] - tol:
                covered = fault_plan is not None and fault_plan.is_dropped(
                    int(thread_of[c]), c
                )
                report.witnesses.append(
                    RaceWitness(
                        kind="timing",
                        row=r,
                        dep=c,
                        thread=int(thread_of[r]),
                        dep_thread=int(thread_of[c]),
                        detail=f"interval of row {r} starts at {start[r]:g} before "
                        f"row {c} finishes at {stop[c]:g}"
                        + ("; its publish was dropped" if covered else ""),
                    )
                )
    return report


def replay_superstep_schedule(S, plan, *, step_ptr=None, part=None) -> RaceReport:
    """Vector-clock replay of a superstep schedule (:mod:`repro.sched`).

    A superstep schedule's only synchronization is the barrier at each
    step boundary: within a step, each thread runs its rows in plan
    order with *no* cross-thread edges.  The replay models exactly
    that — a barrier joins every thread's clock into every other's —
    and reports any dependency read that neither program order nor a
    crossed boundary orders.  On a plan the builder produced
    (cross-thread deps always in earlier steps) the report is clean;
    pass a tampered ``step_ptr`` (e.g. with one boundary deleted) to
    demonstrate detection — a deleted boundary shows up as
    ``missing-sync`` witnesses exactly like a deleted p2p sync edge.
    """
    rows = np.asarray(plan.rows, dtype=np.int64)
    thread_of = np.asarray(plan.thread_of, dtype=np.int64)
    if step_ptr is None:
        step_ptr = plan.step_ptr
    step_ptr = np.asarray(step_ptr, dtype=np.int64)
    if part is None:
        part = plan.part
    n = rows.shape[0]
    p = int(plan.n_threads)
    # per-thread program order = position in the plan's execution order
    seq_of = np.empty(n, dtype=np.int64)
    counters = [0] * p
    for r in rows:
        t = int(thread_of[r])
        seq_of[r] = counters[t]
        counters[t] += 1
    n_steps = int(step_ptr.shape[0]) - 1
    report = RaceReport(n_rows=n, n_threads=p, n_sync_edges=max(n_steps - 1, 0))
    clock = np.zeros((p, p), dtype=np.int64)
    indptr, indices = S.indptr, S.indices
    for s in range(n_steps):
        for j in range(int(step_ptr[s]), int(step_ptr[s + 1])):
            r = int(rows[j])
            t = int(thread_of[r])
            cols = indices[indptr[r] : indptr[r + 1]]
            deps = cols[cols < r] if part == "lower" else cols[cols > r]
            for c in deps:
                c = int(c)
                u = int(thread_of[c])
                report.n_reads_checked += 1
                if u == t:
                    if seq_of[c] >= seq_of[r]:
                        report.witnesses.append(
                            RaceWitness(
                                kind="program-order",
                                row=r,
                                dep=c,
                                thread=t,
                                dep_thread=u,
                                detail=f"same-thread rows out of plan order: "
                                f"seq({c})={int(seq_of[c])} >= seq({r})={int(seq_of[r])}",
                            )
                        )
                    continue
                if clock[t][u] < seq_of[c] + 1:
                    report.witnesses.append(
                        RaceWitness(
                            kind="missing-sync",
                            row=r,
                            dep=c,
                            thread=t,
                            dep_thread=u,
                            detail=f"rows {c} and {r} share superstep {s} across "
                            f"threads {u}/{t} with no barrier between them "
                            f"(consumer clock {int(clock[t][u])}, needs >= "
                            f"{int(seq_of[c]) + 1})",
                        )
                    )
            clock[t][t] += 1
        # the boundary barrier: everyone's history becomes everyone's past
        joined = clock.max(axis=0)
        clock[:] = joined
    return report
