"""Static deadlock/termination analysis for the trisolve schedulers.

:func:`repro.verify.races.replay_superstep_schedule` checks a
:class:`~repro.sched.superstep.SuperstepPlan` *dynamically* — it
executes the schedule with vector clocks.  This module proves the same
properties (and the elastic/sync-free counterparts) without executing,
by constructing each scheduler's **wait-for graph** and checking it is
acyclic:

* **superstep** (:func:`check_superstep_deadlock`) — rows wait on
  their same-thread predecessor (program order), on the barrier
  closing the previous superstep, and — data — on every strict-part
  dependency.  A valid plan puts every cross-thread dependency in an
  earlier superstep, so the graph is a DAG; a dependency pointing at a
  *later* superstep closes a cycle through the barrier (the thread
  waits at a barrier that waits on a row that waits on the thread),
  and a same-step cross-thread dependency is an unordered read — the
  static twin of the replay's ``missing-sync`` witness;
* **sync-free** (:func:`check_syncfree_deadlock`) — lane ``r mod p``
  executes its rows in traversal order and polls a ready flag per
  dependency (:func:`repro.sched.syncfree.simulate_syncfree`).  The
  wait-for graph is (data edges) ∪ (lane program order); with the
  natural ascending/descending traversal it is a DAG because data
  edges always point against the traversal, and the check proves it by
  topological sort, so a tampered traversal order yields an explicit
  poll cycle — two lanes spinning on each other's flags forever;
* **elastic** (:func:`check_elastic_schedule`) — the stale-synchronous
  mode has no waits to deadlock on; its termination claim is the
  ``final_sweep`` fixpoint (:mod:`repro.sched.elastic`).  The check
  recomputes the recursion, demands the stored depths match (a
  tampered ``final_sweep`` makes sweep ``k`` commit a stale read as
  final — the witness names the row), and proves the bound
  ``final_sweep[r] <= staleness * block_of[r] + level_of[r] mod
  (staleness+1)`` — which for a DAG fitting one block is exactly the
  ``max_sweeps = staleness + 1`` guarantee, and in general caps the
  sweep count at ``staleness * n_blocks + 1``.

Witnesses carry the full wait chain, formatted sanitizer-style like
the race and protocol reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "WaitWitness",
    "DeadlockReport",
    "check_superstep_deadlock",
    "check_syncfree_deadlock",
    "check_elastic_schedule",
]


@dataclass(frozen=True)
class WaitWitness:
    """One wait-for cycle or unordered read, with its wait chain.

    ``kind`` is ``"deadlock"`` (a cycle: every party waits forever),
    ``"unordered-read"`` (a same-step cross-thread dependency no
    barrier or program order covers), ``"program-order"`` (a thread's
    own program reads ahead of itself), or ``"fixpoint"`` (an elastic
    ``final_sweep`` entry too small for its dependency chain).
    """

    kind: str
    detail: str
    chain: tuple = ()

    def format(self) -> str:
        lines = [
            f"WARNING: repro.verify.deadlock: scheduler hazard ({self.kind})",
            f"  {self.detail}",
        ]
        if self.chain:
            lines.append(f"  Wait chain ({len(self.chain)} waits):")
            lines.extend(f"    #{i + 1} {step}" for i, step in enumerate(self.chain))
        return "\n".join(lines)


@dataclass
class DeadlockReport:
    """Outcome of one static wait-for-graph analysis."""

    subsystem: str
    n_rows: int = 0
    n_edges: int = 0
    witnesses: list = field(default_factory=list)
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.witnesses and not self.errors

    def format(self, max_witnesses: int = 4) -> str:
        if self.ok:
            return (
                f"{self.subsystem}: wait-for graph acyclic, {self.n_edges} edges "
                f"over {self.n_rows} rows — every execution terminates"
            )
        head = [
            f"{self.subsystem}: {len(self.witnesses)} hazard(s), "
            f"{len(self.errors)} structural error(s)"
        ]
        head += [w.format() for w in self.witnesses[:max_witnesses]]
        head += [f"  error: {e}" for e in self.errors[:max_witnesses]]
        rest = len(self.witnesses) + len(self.errors) - 2 * max_witnesses
        if rest > 0:
            head.append(f"  ... and more")
        return "\n".join(head)


def _strict_edges(pattern, part):
    """Every strict-``part`` dependency edge ``(dep, row)``, vectorized."""
    n = pattern.n_rows
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(pattern.indptr))
    mask = pattern.indices < row_of if part == "lower" else pattern.indices > row_of
    return pattern.indices[mask].astype(np.int64), row_of[mask]


def check_superstep_deadlock(
    plan,
    pattern,
    *,
    step_ptr=None,
    step_of=None,
    thread_of=None,
) -> DeadlockReport:
    """Prove a superstep plan's wait-for graph is a DAG; witness cycles.

    ``step_ptr`` (a tampered barrier layout over ``plan.rows``, the
    same handle ``replay_superstep_schedule`` takes) or
    ``step_of``/``thread_of`` override the plan's maps — the
    selftest's way of planting bugs without rebuilding a plan.
    The graph never needs materializing: with barriers between
    consecutive steps and per-thread program order inside a step, an
    edge classification decides everything — a dependency in an
    earlier step is barrier-ordered, a same-step same-thread
    dependency earlier in program order is program-ordered, a
    same-step cross-thread dependency is an unordered read, a
    same-step same-thread dependency *later* in program order is a
    program-order inversion, and a dependency in a later step closes
    a wait cycle through the barrier.
    """
    if step_ptr is not None:
        if step_of is not None:
            raise ValueError("pass step_ptr or step_of, not both")
        sp = np.asarray(step_ptr, dtype=np.int64)
        step_of = np.empty(plan.n, dtype=np.int64)
        step_of[np.asarray(plan.rows)] = (
            np.searchsorted(sp, np.arange(plan.n), side="right") - 1
        )
    step_of = np.asarray(plan.step_of if step_of is None else step_of, dtype=np.int64)
    thread_of = np.asarray(
        plan.thread_of if thread_of is None else thread_of, dtype=np.int64
    )
    rep = DeadlockReport(subsystem=f"superstep/{plan.part}", n_rows=plan.n)
    d, r = _strict_edges(pattern, plan.part)
    rep.n_edges = int(d.shape[0])
    if rep.n_edges == 0:
        return rep
    pos = np.empty(plan.n, dtype=np.int64)
    pos[plan.rows] = np.arange(plan.n, dtype=np.int64)

    later = np.flatnonzero(step_of[d] > step_of[r])
    for j in later[:4]:
        dj, rj, sd, sr = int(d[j]), int(r[j]), int(step_of[d[j]]), int(step_of[r[j]])
        rep.witnesses.append(
            WaitWitness(
                kind="deadlock",
                detail=(
                    f"row {rj} (step {sr}) reads dependency {dj} scheduled in the "
                    f"*later* step {sd}: the barrier chain closes a wait cycle"
                ),
                chain=(
                    f"row {rj} waits on data from row {dj} (flag/poll)",
                    f"row {dj} waits on barrier(step {sd - 1}) (it runs in step {sd})",
                    f"barrier(step {sr}) <= barrier(step {sd - 1}) waits on every "
                    f"row of step {sr}",
                    f"... including row {rj} — cycle",
                ),
            )
        )

    same = step_of[d] == step_of[r]
    cross = np.flatnonzero(same & (thread_of[d] != thread_of[r]))
    for j in cross[:4]:
        dj, rj = int(d[j]), int(r[j])
        rep.witnesses.append(
            WaitWitness(
                kind="unordered-read",
                detail=(
                    f"row {rj} (thread {int(thread_of[rj])}) reads row {dj} "
                    f"(thread {int(thread_of[dj])}) inside the same step "
                    f"{int(step_of[rj])}: no barrier or program order covers it"
                ),
                chain=(
                    f"thread {int(thread_of[rj])} computes row {rj} without waiting",
                    f"thread {int(thread_of[dj])} computes row {dj} concurrently",
                ),
            )
        )

    inverted = np.flatnonzero(same & (thread_of[d] == thread_of[r]) & (pos[d] >= pos[r]))
    for j in inverted[:4]:
        dj, rj = int(d[j]), int(r[j])
        rep.witnesses.append(
            WaitWitness(
                kind="program-order",
                detail=(
                    f"thread {int(thread_of[rj])} executes row {rj} before its own "
                    f"dependency {dj} in step {int(step_of[rj])}"
                ),
            )
        )
    # count the uncounted tail so reports stay honest about scale
    extra = (len(later) - 4) + (len(cross) - 4) + (len(inverted) - 4)
    if extra > 0:
        rep.errors.append(f"{extra} further hazardous dependency edge(s) elided")
    return rep


def check_syncfree_deadlock(
    pattern,
    n_lanes: int,
    part: str = "lower",
    *,
    order=None,
) -> DeadlockReport:
    """Prove the sync-free flag-poll graph acyclic by topological sort.

    ``order`` overrides the traversal (default: ascending rows for the
    lower part, descending for the upper — the order
    :func:`~repro.sched.syncfree.simulate_syncfree` uses).  Edges are
    ``row -> dependency`` (flag poll) and ``row -> lane predecessor``
    (a lane is one in-order program).  A cycle means a set of lanes
    each spinning on a flag the others can never set.
    """
    if part not in ("lower", "upper"):
        raise ValueError("part must be 'lower' or 'upper'")
    p = int(n_lanes)
    if p < 1:
        raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
    n = pattern.n_rows
    rep = DeadlockReport(subsystem=f"syncfree/{part}", n_rows=n)
    if order is None:
        order = np.arange(n) if part == "lower" else np.arange(n - 1, -1, -1)
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,) or not np.array_equal(np.sort(order), np.arange(n)):
        rep.errors.append("traversal order is not a permutation of the rows")
        return rep
    d, r = _strict_edges(pattern, part)
    # lane program-order edges: each row waits on the previous row its
    # lane executes (lane = row mod p, in traversal order)
    last = np.full(p, -1, dtype=np.int64)
    lane_src, lane_dst = [], []
    for row in order:
        lane = int(row) % p
        if last[lane] >= 0:
            lane_src.append(int(row))
            lane_dst.append(int(last[lane]))
        last[lane] = int(row)
    src = np.concatenate([r, np.asarray(lane_src, dtype=np.int64)])
    dst = np.concatenate([d, np.asarray(lane_dst, dtype=np.int64)])
    kinds = np.concatenate(
        [np.zeros(r.shape[0], np.int64), np.ones(len(lane_src), np.int64)]
    )
    rep.n_edges = int(src.shape[0])
    # Kahn: repeatedly retire rows all of whose waits are satisfied
    indeg = np.bincount(src, minlength=n)  # how many waits each row holds
    order_by_dst = np.argsort(dst, kind="stable")
    dst_sorted = dst[order_by_dst]
    starts = np.searchsorted(dst_sorted, np.arange(n))
    stops = np.searchsorted(dst_sorted, np.arange(n), side="right")
    ready = [int(i) for i in np.flatnonzero(indeg == 0)]
    n_done = 0
    while ready:
        v = ready.pop()
        n_done += 1
        for e in order_by_dst[starts[v] : stops[v]]:
            s = int(src[e])
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if n_done == n:
        return rep
    # a cycle survives: walk it out of the remaining subgraph
    remaining = np.flatnonzero(indeg > 0)
    nxt = {}
    for v in remaining:
        v = int(v)
        for j in np.flatnonzero(src == v):
            w = int(dst[j])
            if indeg[w] > 0:
                nxt[v] = (w, "flag poll" if kinds[j] == 0 else "lane order")
                break
    v0 = int(remaining[0])
    seen = {}
    v = v0
    path = []
    while v not in seen and v in nxt:
        seen[v] = len(path)
        w, why = nxt[v]
        path.append((v, w, why))
        v = w
    cycle = path[seen.get(v, 0) :]
    chain = tuple(
        f"row {a} (lane {a % p}) waits on row {b} (lane {b % p}) [{why}]"
        for a, b, why in cycle
    )
    rep.witnesses.append(
        WaitWitness(
            kind="deadlock",
            detail=(
                f"{len(remaining)} row(s) can never start: flag-poll cycle "
                f"across lanes (no barrier exists to break it)"
            ),
            chain=chain + ("... back to the start — cycle",),
        )
    )
    return rep


def check_elastic_schedule(sched, pattern) -> DeadlockReport:
    """Verify elastic structure, the fixpoint recursion, and its bound.

    Recomputes ``block_of`` and the ``final_sweep`` recursion from the
    pattern and demands the stored schedule match; any row whose
    stored depth is *smaller* than required is a termination bug
    (sweep ``final_sweep[r]`` would commit a stale read as final) and
    gets a ``fixpoint`` witness with its dependency chain.  Also
    proves the per-row bound ``final_sweep[r] <= staleness *
    block_of[r] + (level_of[r] mod (staleness+1))``, whose corollary
    is the paper's fixpoint guarantee: ``n_sweeps <= staleness + 1``
    per block, ``staleness * n_blocks + 1`` overall.
    """
    rep = DeadlockReport(subsystem=f"elastic/{sched.part}", n_rows=sched.n)
    n = sched.n
    span = sched.staleness + 1
    level_of = np.asarray(sched.level_of, dtype=np.int64)
    expect_block = level_of // span
    if not np.array_equal(np.asarray(sched.block_of), expect_block):
        rep.errors.append("block_of != level_of // (staleness + 1)")
    rows = np.asarray(sched.rows, dtype=np.int64)
    if rows.shape != (n,) or not np.array_equal(np.sort(rows), np.arange(n)):
        rep.errors.append("rows is not a permutation of 0..n-1")
        return rep
    if np.any(np.diff(level_of[rows]) < 0):
        rep.errors.append("rows is not in level (topological) order")
        return rep
    d, r = _strict_edges(pattern, sched.part)
    rep.n_edges = int(d.shape[0])
    # recompute the recursion in the schedule's own topological order
    need = np.zeros(n, dtype=np.int64)
    ent_ptr, ent_idx = sched.ent_ptr, sched.ent_idx
    indices = pattern.indices
    for row in rows:
        row = int(row)
        ents = ent_idx[ent_ptr[row] : ent_ptr[row + 1]]
        if ents.size:
            dd = indices[ents]
            fs = need[dd] + (expect_block[dd] == expect_block[row])
            need[row] = int(fs.max())
    stored = np.asarray(sched.final_sweep, dtype=np.int64)
    low = np.flatnonzero(stored < need)
    for row in low[:4]:
        row = int(row)
        ents = ent_idx[ent_ptr[row] : ent_ptr[row + 1]]
        dd = indices[ents]
        culprit = int(dd[np.argmax(need[dd] + (expect_block[dd] == expect_block[row]))])
        rep.witnesses.append(
            WaitWitness(
                kind="fixpoint",
                detail=(
                    f"row {row}: stored final_sweep {int(stored[row])} < required "
                    f"{int(need[row])} — sweep {int(stored[row])} commits a stale "
                    f"read of row {culprit} as final and the solve terminates wrong"
                ),
                chain=(
                    f"row {row} (block {int(expect_block[row])}) reads row {culprit} "
                    f"(block {int(expect_block[culprit])}, final_sweep "
                    f"{int(need[culprit])})",
                    f"a same-block read is stale until sweep {int(need[row])}",
                ),
            )
        )
    if low.size > 4:
        rep.errors.append(f"{low.size - 4} further under-counted final_sweep row(s)")
    high = np.flatnonzero(stored > need)
    if high.size:
        rep.errors.append(
            f"{high.size} row(s) with final_sweep larger than the recursion "
            f"requires (wasted correction sweeps)"
        )
    # the provable bound: staleness increments per block, plus the
    # within-block level offset
    bound = sched.staleness * expect_block + (level_of - expect_block * span)
    over = np.flatnonzero(need > bound)
    if over.size:
        row = int(over[0])
        rep.errors.append(
            f"fixpoint bound violated at row {row}: final_sweep {int(need[row])} > "
            f"staleness*block + level offset {int(bound[row])} (recursion broken)"
        )
    # ent CSR must be exactly the strict part (bit-identity gather order)
    cnt = np.bincount(r, minlength=n) if d.size else np.zeros(n, np.int64)
    if not np.array_equal(np.diff(ent_ptr), cnt):
        rep.errors.append("ent_ptr does not match the strict-part row degrees")
    return rep
