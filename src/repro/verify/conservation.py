"""Request conservation: every admitted request ends in exactly one outcome.

The serving and cluster layers promise a closed ledger: a request
handed to :meth:`~repro.serve.SolveService.run` (or the cluster's
:meth:`~repro.cluster.ClusterService.run`) terminates in **exactly
one** :class:`~repro.serve.RequestResult` whose ``outcome`` is drawn
from the four-word vocabulary (``served`` / ``deadline_miss`` /
``rejected`` / ``breakdown``) — no silent drops, no duplicates, no
fifth state.  Under fault injection that promise is the whole
availability story: a node crash may *delay* or *degrade* a request,
but it must never make one disappear.

This module is the ledger auditor.  :func:`check_conservation` takes
the requests that went in and the results that came out and returns a
:class:`ConservationReport` listing every violation:

* a request with no result (**lost** — the planted-bug CI gate drops
  the cluster's failover re-route and demands this fires);
* a request with more than one result (**duplicated** — e.g. a hedged
  re-execution whose loser was not discarded);
* a result for a request that was never submitted (**phantom**);
* an outcome outside the vocabulary, or one inconsistent with its
  payload (``rejected`` carrying a solution, ``served`` without one,
  non-finite served values).

It is a *dynamic* checker — it audits a run, not the source — and so
lives beside the static analyses as the piece the fault-schedule
property tests and ``repro cluster bench --check`` call after every
simulated run (see ``docs/cluster.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConservationReport", "check_conservation"]

#: mirrors :data:`repro.serve.request.OUTCOMES` (kept literal here so the
#: checker cannot drift silently with the vocabulary it audits)
_OUTCOMES = ("served", "deadline_miss", "rejected", "breakdown")


@dataclass
class ConservationReport:
    """Audit result: the violations, if any, of one run's ledger."""

    n_requests: int = 0
    n_results: int = 0
    outcome_counts: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self):
        return {
            "n_requests": self.n_requests,
            "n_results": self.n_results,
            "outcome_counts": dict(self.outcome_counts),
            "ok": self.ok,
            "violations": list(self.violations),
        }

    def __repr__(self):
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"ConservationReport({self.n_requests} requests -> "
            f"{self.n_results} results, {state})"
        )


def check_conservation(requests, results, *, outcomes=_OUTCOMES) -> ConservationReport:
    """Audit one run: ``requests`` in, ``results`` out, nothing lost.

    ``requests`` is the full submitted workload (admitted *and*
    rejected — rejection is itself a structured outcome); ``results``
    the run's returned :class:`~repro.serve.RequestResult` list.
    Returns a :class:`ConservationReport`; ``report.ok`` is the gate.
    """
    report = ConservationReport(n_requests=len(requests), n_results=len(results))
    expected = {}
    for req in requests:
        rid = int(req.request_id)
        if rid in expected:
            report.violations.append(f"request id {rid} submitted more than once")
        expected[rid] = req
    seen: dict = {}
    for res in results:
        rid = int(res.request_id)
        seen[rid] = seen.get(rid, 0) + 1
        outcome = res.outcome
        report.outcome_counts[outcome] = report.outcome_counts.get(outcome, 0) + 1
        if outcome not in outcomes:
            report.violations.append(
                f"request {rid}: outcome {outcome!r} outside {outcomes}"
            )
            continue
        if outcome == "rejected" and res.x is not None:
            report.violations.append(
                f"request {rid}: rejected but carries a solution (never ran?)"
            )
        if outcome == "served":
            if res.x is None:
                report.violations.append(f"request {rid}: served without a solution")
            elif not np.all(np.isfinite(res.x)):
                report.violations.append(
                    f"request {rid}: served with non-finite solution values"
                )
    for rid, n in sorted(seen.items()):
        if rid not in expected:
            report.violations.append(f"phantom result for unsubmitted request id {rid}")
        if n > 1:
            report.violations.append(
                f"request {rid} terminated {n} times (duplicate outcomes)"
            )
    lost = sorted(set(expected) - set(seen))
    for rid in lost:
        report.violations.append(f"request {rid} was admitted but never terminated (lost)")
    return report
