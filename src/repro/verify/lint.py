"""Repo-specific AST lint rules for ``src/repro``.

Generic linters cannot know this codebase's contracts, so the five
rules here encode them directly (each with a stable ID, used both in
reports and in suppression comments):

``JAV001`` — *guarded division in core kernels.*  In ``core/`` modules,
    dividing by a stored matrix entry (a subscript like ``data[kk]``, or
    a name bound from one, like ``pivot = data[diag_pos[c]]``) is only
    legal inside a function that goes through the pivot-floor breakdown
    path — i.e. one that raises a ``*Breakdown*`` error or calls
    ``classify_pivot``.  An unguarded division silently turns a zero or
    NaN pivot into a poisoned factor.

``JAV002`` — *synchronization primitives live in runtime/.*  ``time.sleep``
    and ``threading`` lock-family constructors (``Lock``, ``RLock``,
    ``Condition``, ``Semaphore``, ``BoundedSemaphore``, ``Barrier``)
    outside ``runtime/`` are flagged: everything else in the framework
    is deterministic simulation or pure numerics, and stray blocking
    calls there are bugs waiting for a scheduler to find them.  One
    more file is exempt: ``serve/workers.py``, whose thread-safe
    ``submit()`` inbox is the serving layer's single sanctioned
    ingestion lock (the service core itself stays single-threaded).

``JAV003`` — *no mutation of symbolic-cache products.*  Arrays obtained
    from ``cached_analysis(...)`` / ``SymbolicCache.analysis(...)`` (or
    their accessors ``diag_pos`` / ``levels`` / ``plan`` /
    ``solve_costs`` / ``factor_costs`` / ``level_order``) are shared
    across factor/solve cycles and threads; subscript-assigning or
    calling mutating methods (``fill``, ``sort``, ``resize``, ``put``,
    ``partition``) on them corrupts every other consumer.  (At runtime
    the cache also freezes its arrays — this rule catches the mutation
    at review time instead of raise time.)

``JAV004`` — *public modules declare ``__all__``.*  Every module except
    ``__main__``/tests must state its export surface; the re-export
    convention (explicit ``__all__`` everywhere) is what lets the lint
    and the docs enumerate the API.

``JAV005`` — *instrumentation goes through the repro.obs facade.*
    Wall-clock timing calls (``time.perf_counter``, ``perf_counter_ns``,
    ``process_time``, ``monotonic``, ``monotonic_ns``) outside
    ``obs/`` and ``runtime/`` are flagged: ad-hoc timing in the numeric
    layers bypasses the span recorder (so the timeline lies) and is
    exactly the kind of side channel the bit-identity tests cannot see.
    Instrument with :func:`repro.obs.span` / :func:`repro.obs.instant`
    instead.

``JAV006`` — *no unordered-collection iteration in seeded layers.*  In
    ``serve/``, ``cluster/``, ``sched/`` and ``resilience/`` — the
    layers whose runs are replayed byte-for-byte from a seed —
    iterating a ``set``/``frozenset`` (literal, constructor,
    comprehension, or a name bound from one) feeds hash order into
    results: Python randomizes string hashing per process, so the same
    seed produces different traces.  Iterate ``sorted(the_set)``
    instead.

``JAV007`` — *randomness must be seeded.*  Module-level ``random.*``
    and ``np.random.*`` calls (and ``default_rng()`` / ``Random()`` /
    ``RandomState()`` with no seed argument) draw from global or
    OS-seeded state, unreproducible by construction.  Everything
    outside the ``workload.py`` generator modules must take an
    explicit seed: ``np.random.default_rng(seed)`` or
    ``random.Random(seed)``.

``JAV008`` — *no builtin ``sum()`` in kernels.*  The ``kernels/``
    layer carries the bit-identity contract (same inputs, same bits,
    any thread count); Python's builtin ``sum`` accumulates
    left-to-right over whatever order its iterable happens to have
    and rounds at every step.  Use ``math.fsum`` (exact) or a fixed
    ``np.add.reduce`` ordering instead.

A finding can be suppressed in place with a trailing comment
``# verify: ok[JAV002] <reason>`` (comma-separate several IDs, ``*``
suppresses all); module-scope rules accept the comment anywhere in the
file.  Use sparingly — each suppression is a claim that the contract
holds for a reason the AST cannot see.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "RULES",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

_LOCK_NAMES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Barrier"}
_CACHE_CALLS = {"cached_analysis"}
_CACHE_ACCESSORS = {
    "analysis",
    "diag_pos",
    "levels",
    "plan",
    "solve_costs",
    "factor_costs",
    "level_order",
}
_MUTATING_METHODS = {"fill", "sort", "resize", "put", "partition", "itemset"}
_SUPPRESS_RE = re.compile(r"#\s*verify:\s*ok\[([A-Z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressions(source: str) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[i] = {s.strip() for s in m.group(1).split(",") if s.strip()}
    return out


def _path_parts(path: str) -> tuple[str, ...]:
    return Path(path).parts


# ----------------------------------------------------------------------
# JAV001
# ----------------------------------------------------------------------
def _is_guarded(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = ""
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name):
                name = exc.id
            elif isinstance(exc, ast.Attribute):
                name = exc.attr
            if "Breakdown" in name:
                return True
        if isinstance(node, ast.Call):
            f = node.func
            callee = f.id if isinstance(f, ast.Name) else getattr(f, "attr", "")
            if callee == "classify_pivot":
                return True
    return False


def _data_derived_names(fn: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Subscript)
        ):
            names.add(node.targets[0].id)
    return names


def _check_core_division(tree: ast.Module, path: str) -> list[Finding]:
    """core/ kernels must not divide by a stored entry without a pivot-floor guard."""
    if "core" not in _path_parts(path):
        return []
    findings = []
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        guarded = _is_guarded(fn)
        if guarded:
            continue
        data_names = _data_derived_names(fn)
        for node in ast.walk(fn):
            divisor = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                divisor = node.right
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                divisor = node.value
            if divisor is None:
                continue
            by_entry = isinstance(divisor, ast.Subscript) or (
                isinstance(divisor, ast.Name) and divisor.id in data_names
            )
            if by_entry:
                findings.append(
                    Finding(
                        "JAV001",
                        path,
                        node.lineno,
                        node.col_offset,
                        f"division by a stored matrix entry in `{fn.name}` without "
                        "a pivot-floor guard (raise a *Breakdown* error or route "
                        "through classify_pivot before dividing)",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# JAV002
# ----------------------------------------------------------------------
def _check_sync_primitives(tree: ast.Module, path: str) -> list[Finding]:
    """time.sleep and threading lock constructors belong in runtime/ only.

    ``serve/workers.py`` is the one named exception: the service's
    thread-safe ``submit()`` inbox needs a lock, and confining the
    exemption to that file keeps the rest of ``serve/`` provably
    lock-free.
    """
    parts = _path_parts(path)
    if "runtime" in parts or parts[-2:] == ("serve", "workers.py"):
        return []
    findings = []
    lock_aliases: set[str] = set()
    sleep_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "threading":
                for a in node.names:
                    if a.name in _LOCK_NAMES:
                        lock_aliases.add(a.asname or a.name)
            elif node.module == "time":
                for a in node.names:
                    if a.name == "sleep":
                        sleep_aliases.add(a.asname or a.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        bad = None
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            if f.value.id == "time" and f.attr == "sleep":
                bad = "time.sleep"
            elif f.value.id == "threading" and f.attr in _LOCK_NAMES:
                bad = f"threading.{f.attr}"
        elif isinstance(f, ast.Name):
            if f.id in sleep_aliases:
                bad = "time.sleep"
            elif f.id in lock_aliases:
                bad = f"threading.{f.id}"
        if bad is not None:
            findings.append(
                Finding(
                    "JAV002",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"{bad} outside runtime/ — blocking synchronization belongs "
                    "to the threaded executors",
                )
            )
    return findings


# ----------------------------------------------------------------------
# JAV003
# ----------------------------------------------------------------------
def _is_cache_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    f = node.func
    if isinstance(f, ast.Name) and f.id in _CACHE_CALLS:
        return True
    return isinstance(f, ast.Attribute) and f.attr in _CACHE_ACCESSORS


def _root_of(node: ast.AST, tainted: set[str]) -> bool:
    """True when the expression chains back to a cache product."""
    while True:
        if _is_cache_call(node):
            return True
        if isinstance(node, ast.Call):
            # a non-accessor method call (`.copy()`, `.astype()`, ...)
            # returns a fresh object — the taint does not flow through
            return False
        elif isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id in tainted
        else:
            return False


def _check_cache_mutation(tree: ast.Module, path: str) -> list[Finding]:
    """no in-place writes or mutating methods on symbolic-cache products."""
    findings = []
    body_nodes = list(ast.walk(tree))
    # taint propagation to fixpoint: x = cached_analysis(F).plan('lower');
    # rows = x.rows; rows[0] = ... must still be caught
    tainted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in body_nodes:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id not in tainted
                and _root_of(node.value, tainted)
            ):
                tainted.add(node.targets[0].id)
                changed = True
    for node in body_nodes:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Subscript)]
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Subscript):
            targets = [node.target]
        for tgt in targets:
            if _root_of(tgt.value, tainted):
                findings.append(
                    Finding(
                        "JAV003",
                        path,
                        node.lineno,
                        node.col_offset,
                        "in-place write to an array obtained from the symbolic "
                        "cache — cached products are shared and frozen",
                    )
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and _root_of(node.func.value, tainted)
        ):
            findings.append(
                Finding(
                    "JAV003",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"mutating method .{node.func.attr}() on a symbolic-cache "
                    "product — cached products are shared and frozen",
                )
            )
    return findings


# ----------------------------------------------------------------------
# JAV005
# ----------------------------------------------------------------------
_CLOCK_NAMES = {
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "monotonic",
    "monotonic_ns",
}


def _check_raw_clocks(tree: ast.Module, path: str) -> list[Finding]:
    """wall-clock timing outside obs/ and runtime/ bypasses the span layer."""
    parts = _path_parts(path)
    if "obs" in parts or "runtime" in parts:
        return []
    findings = []
    clock_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for a in node.names:
                if a.name in _CLOCK_NAMES:
                    clock_aliases.add(a.asname or a.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        bad = None
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            if f.value.id == "time" and f.attr in _CLOCK_NAMES:
                bad = f"time.{f.attr}"
        elif isinstance(f, ast.Name) and f.id in clock_aliases:
            bad = f"time.{f.id}"
        if bad is not None:
            findings.append(
                Finding(
                    "JAV005",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"{bad} outside obs/ and runtime/ — instrument through the "
                    "repro.obs facade (span/instant/counter) so timing shows up "
                    "on the recorded timeline",
                )
            )
    return findings


# ----------------------------------------------------------------------
# JAV004
# ----------------------------------------------------------------------
def _check_all_declared(tree: ast.Module, path: str) -> list[Finding]:
    """public modules must declare an explicit __all__."""
    base = Path(path).name
    if base == "__main__.py" or base.startswith("test_") or base == "conftest.py":
        return []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
                return []
        if isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                return []
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                return []
    return [
        Finding(
            "JAV004",
            path,
            1,
            0,
            "public module does not declare __all__ (state the export surface "
            "explicitly)",
        )
    ]


# ----------------------------------------------------------------------
# JAV006
# ----------------------------------------------------------------------
_SEEDED_LAYERS = {"serve", "cluster", "sched", "resilience"}


def _is_set_expr(node: ast.AST, tainted: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra preserves unorderedness
        return _is_set_expr(node.left, tainted) or _is_set_expr(node.right, tainted)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("union", "intersection", "difference",
                              "symmetric_difference", "copy"):
            return _is_set_expr(node.func.value, tainted)
    return False


def _scope_nodes(scope: ast.AST):
    """Walk ``scope`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _check_unordered_iteration(tree: ast.Module, path: str) -> list[Finding]:
    """seeded layers must not let set iteration order reach results."""
    if not (_SEEDED_LAYERS & set(_path_parts(path))):
        return []
    findings = []
    scopes = [tree] + [
        n for n in ast.walk(tree) if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        body_nodes = list(_scope_nodes(scope))
        # taint is per-scope: a `seen = set()` in one method must not
        # implicate an unrelated list of the same name elsewhere
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in body_nodes:
                tgt = None
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    tgt, val = node.targets[0].id, node.value
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and isinstance(node.target, ast.Name)
                ):
                    tgt, val = node.target.id, node.value
                if tgt and tgt not in tainted and _is_set_expr(val, tainted):
                    tainted.add(tgt)
                    changed = True
        # a generator consumed by an order-insensitive sink (another
        # set, or an explicit sort) is fine regardless of its source
        exempt: set[int] = set()
        for node in body_nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset", "sorted", "max", "min")
                and len(node.args) == 1
                and isinstance(node.args[0], ast.GeneratorExp)
            ):
                exempt.add(id(node.args[0]))
        iters: list[ast.AST] = []
        for node in body_nodes:
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, ast.SetComp) or (
                isinstance(node, ast.GeneratorExp) and id(node) in exempt
            ):
                continue
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it, tainted):
                findings.append(
                    Finding(
                        "JAV006",
                        path,
                        it.lineno,
                        it.col_offset,
                        "iteration over an unordered set in a seeded layer — hash "
                        "order leaks into the replayed results; iterate "
                        "sorted(...) instead",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# JAV007
# ----------------------------------------------------------------------
_RNG_CTORS = {"default_rng", "Random", "RandomState", "SeedSequence", "Generator"}


def _check_unseeded_random(tree: ast.Module, path: str) -> list[Finding]:
    """random draws outside workload.py generators must carry a seed."""
    if Path(path).name == "workload.py":
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if not isinstance(f, ast.Attribute):
            continue
        root = f.value
        is_random = isinstance(root, ast.Name) and root.id == "random"
        is_np_random = (
            isinstance(root, ast.Attribute)
            and root.attr == "random"
            and isinstance(root.value, ast.Name)
            and root.value.id in ("np", "numpy")
        )
        if not (is_random or is_np_random):
            continue
        if f.attr in _RNG_CTORS:
            if node.args or node.keywords:
                continue  # explicitly seeded constructor
            what = f"{'np.random' if is_np_random else 'random'}.{f.attr}()"
            msg = f"{what} with no seed draws OS entropy — pass an explicit seed"
        else:
            what = f"{'np.random' if is_np_random else 'random'}.{f.attr}"
            msg = (
                f"{what} uses global RNG state — construct a seeded "
                "np.random.default_rng(seed) / random.Random(seed) instead"
            )
        findings.append(Finding("JAV007", path, node.lineno, node.col_offset, msg))
    return findings


# ----------------------------------------------------------------------
# JAV008
# ----------------------------------------------------------------------
def _check_builtin_sum(tree: ast.Module, path: str) -> list[Finding]:
    """kernels' bit-identity paths must not use builtin sum()."""
    if "kernels" not in _path_parts(path):
        return []
    findings = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
        ):
            findings.append(
                Finding(
                    "JAV008",
                    path,
                    node.lineno,
                    node.col_offset,
                    "builtin sum() in a kernels/ module — per-step rounding in "
                    "iterable order breaks the bit-identity contract; use "
                    "math.fsum or a fixed np.add.reduce ordering",
                )
            )
    return findings


RULES = {
    "JAV001": _check_core_division,
    "JAV002": _check_sync_primitives,
    "JAV003": _check_cache_mutation,
    "JAV004": _check_all_declared,
    "JAV005": _check_raw_clocks,
    "JAV006": _check_unordered_iteration,
    "JAV007": _check_unseeded_random,
    "JAV008": _check_builtin_sum,
}
_MODULE_SCOPE_RULES = {"JAV004"}


def lint_source(source: str, path: str, *, rules=None) -> list[Finding]:
    """Lint one module's source; ``path`` drives rule applicability."""
    tree = ast.parse(source, filename=path)
    selected = RULES if rules is None else {r: RULES[r] for r in rules}
    suppress = _suppressions(source)
    module_ok = set().union(*suppress.values()) if suppress else set()
    findings: list[Finding] = []
    for rule_id, check in selected.items():
        for f in check(tree, path):
            if rule_id in _MODULE_SCOPE_RULES:
                if rule_id in module_ok or "*" in module_ok:
                    continue
            line_ok = suppress.get(f.line, set())
            if f.rule in line_ok or "*" in line_ok:
                continue
            findings.append(f)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def iter_python_files(paths):
    """Yield ``.py`` files under the given files/directories."""
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths, *, rules=None) -> list[Finding]:
    """Lint every python file under ``paths``; returns all findings."""
    findings: list[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_source(f.read_text(), str(f), rules=rules))
    return findings
