"""Dependency-pruning proof checker: sync set covers the true DAG.

§III-A of the paper argues that because each thread executes its rows in
ascending (level-ordered) id, waiting for "thread *u*'s counter has
passed row *x*" subsumes every dependency on an earlier row of *u* — so
one retained sync per (row, producer-thread) pair, bounded by the
*latest* dependency, replaces the full cross-thread edge set (the
sparsified synchronization of Park et al.).

This module turns that argument into a machine-checked proof.  Given a
pattern and a row→thread map, :func:`check_pruning` enumerates the true
dependency DAG (strict-lower pattern entries) and proves every edge
``c → r`` is *dominated*:

* **intra-thread** edges are covered by program order (``c < r`` and the
  owner runs rows ascending), and
* **cross-thread** edges are covered by a retained sync ``(u, need)`` of
  row ``r`` with ``need >= c`` and ``thread_of[need] == u`` — the
  monotonic counter passing ``need`` implies ``c`` is complete.

The retained set defaults to the implementation's own
(:func:`repro.kernels.plans.build_producer_csr`, the table the batched
DES and the threaded runtime both derive their waits from), so the
check certifies the shipped code, not a re-derivation.  The report
carries the paper's sparsification diagnostic: retained syncs vs. total
cross-thread edges (the pruning ratio).

Also here: structural coverage checks for the two lower-stage methods
(:func:`check_lower_er`, :func:`check_lower_sr`) — their safety rests on
phase/barrier structure rather than counters, and the checks verify the
read sets actually respect that structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .races import sync_edges_from_producer_csr, thread_sequences

__all__ = [
    "PruningReport",
    "check_pruning",
    "implementation_sync_sets_agree",
    "check_lower_er",
    "check_lower_sr",
]


@dataclass
class PruningReport:
    """Proof outcome plus the paper's sparsification diagnostics."""

    n_rows: int
    n_threads: int
    n_dag_edges: int = 0
    n_cross_edges: int = 0
    n_sync_edges: int = 0
    uncovered: list = field(default_factory=list)  # (row, dep, producer, why)

    @property
    def ok(self) -> bool:
        return not self.uncovered

    @property
    def pruning_ratio(self) -> float:
        """Retained syncs / cross-thread DAG edges (lower = more pruned)."""
        if self.n_cross_edges == 0:
            return 1.0 if self.n_sync_edges == 0 else float("inf")
        return self.n_sync_edges / self.n_cross_edges

    def format(self) -> str:
        base = (
            f"{self.n_dag_edges} dag edges ({self.n_cross_edges} cross-thread) on "
            f"{self.n_rows} rows / {self.n_threads} threads; "
            f"{self.n_sync_edges} syncs retained (pruning ratio "
            f"{self.pruning_ratio:.3f})"
        )
        if self.ok:
            return f"covered: {base}"
        lines = [f"NOT covered: {base}"]
        for row, dep, u, why in self.uncovered[:8]:
            lines.append(f"  edge {dep} -> {row} (producer thread {u}): {why}")
        if len(self.uncovered) > 8:
            lines.append(f"  ... and {len(self.uncovered) - 8} more")
        return "\n".join(lines)


def check_pruning(S, thread_of, *, m: int | None = None, sync=None) -> PruningReport:
    """Prove the pruned sync set dominates the true dependency DAG.

    ``sync`` — per-row ``{producer_thread: latest_row}`` — defaults to
    the implementation's producer table.  Returns a
    :class:`PruningReport`; ``report.ok`` is the proof verdict and
    ``report.uncovered`` lists every edge whose domination fails, with
    the reason.
    """
    thread_of = np.asarray(thread_of, dtype=np.int64)
    if m is None:
        m = int(thread_of.shape[0])
    _, seq_of = thread_sequences(thread_of, m)
    p = int(thread_of[:m].max()) + 1 if m else 1
    if sync is None:
        from ..kernels.plans import build_producer_csr

        sync = sync_edges_from_producer_csr(*build_producer_csr(S, m, thread_of))
    report = PruningReport(n_rows=m, n_threads=p)
    report.n_sync_edges = sum(len(s) for s in sync)
    indptr, indices = S.indptr, S.indices
    for r in range(m):
        t = int(thread_of[r])
        waits = sync[r]
        # soundness of the retained edges themselves
        for u, need in waits.items():
            u, need = int(u), int(need)
            if u == t:
                report.uncovered.append(
                    (r, need, u, "self-wait: retained sync targets the row's own thread")
                )
            elif need >= r:
                report.uncovered.append(
                    (r, need, u, f"wait target {need} is not before row {r}")
                )
            elif need >= m or int(thread_of[need]) != u:
                report.uncovered.append(
                    (r, need, u, f"thread {u} does not own wait target row {need}")
                )
        cols = indices[indptr[r] : indptr[r + 1]]
        deps = cols[cols < r]
        for c in deps:
            c = int(c)
            u = int(thread_of[c])
            report.n_dag_edges += 1
            if u == t:
                # implied intra-thread order: ascending ids = program order
                if seq_of[c] >= seq_of[r]:
                    report.uncovered.append(
                        (r, c, u, "intra-thread order violated (non-ascending rows)")
                    )
                continue
            report.n_cross_edges += 1
            need = waits.get(u)
            if need is None:
                report.uncovered.append(
                    (r, c, u, f"no retained sync on producer thread {u}")
                )
            elif int(need) < c:
                report.uncovered.append(
                    (r, c, u, f"retained sync bound {int(need)} < dependency {c}")
                )
    return report


def implementation_sync_sets_agree(S, thread_of, *, m: int | None = None):
    """Cross-check the DES and threaded-runtime pruned sync derivations.

    ``upper_p2p_sim`` waits per :func:`repro.kernels.plans.build_producer_csr`;
    the real threads wait per
    :func:`repro.runtime.threadpool.deps_by_producer`.  Both must derive
    the identical ``{producer: latest}`` map for every row — returns the
    list of rows where they disagree (empty = agreement).
    """
    from ..kernels.plans import build_producer_csr
    from ..runtime.threadpool import deps_by_producer

    thread_of = np.asarray(thread_of, dtype=np.int64)
    if m is None:
        m = int(thread_of.shape[0])
    des = sync_edges_from_producer_csr(*build_producer_csr(S, m, thread_of))
    mismatches = []
    for r in range(m):
        mine = deps_by_producer(S, r, thread_of, int(thread_of[r]))
        if mine != des[r]:
            mismatches.append((r, mine, des[r]))
    return mismatches


def check_lower_er(S, m: int, n_threads: int) -> PruningReport:
    """Coverage proof for the Even-Rows lower stage (§III-B).

    Phase 1 (parallel blocks) eliminates only columns ``< m`` — reads of
    upper-stage rows, all complete before the stage-entry barrier.
    Phase 2 (the corner) runs serially in ascending row order.  The
    check verifies every strict-lower dependency of a lower row is
    either ``< m`` (barrier-covered) or handled by the serial corner,
    and that the static blocks partition ``[m, n)``.
    """
    from ..core.lower_er import EvenRows

    n = S.n_rows
    report = PruningReport(n_rows=n - m, n_threads=int(n_threads))
    covered = np.zeros(n, dtype=bool)
    for t, lo, hi in EvenRows(m=m, n=n, n_threads=int(n_threads)).blocks():
        if np.any(covered[lo:hi]):
            report.uncovered.append((lo, hi, t, "ER blocks overlap"))
        covered[lo:hi] = True
    if not np.all(covered[m:n]):
        missing = int(np.nonzero(~covered[m:n])[0][0]) + m
        report.uncovered.append((missing, -1, -1, "ER blocks do not cover all lower rows"))
    indptr, indices = S.indptr, S.indices
    for r in range(m, n):
        cols = indices[indptr[r] : indptr[r + 1]]
        deps = cols[cols < r]
        for c in deps:
            c = int(c)
            report.n_dag_edges += 1
            if c < m:
                # phase 1 read, ordered by the stage-entry barrier
                report.n_sync_edges += 0
            else:
                # corner read: serial ascending order covers c < r
                report.n_cross_edges += 1
    # the barrier is the single retained sync of the stage
    report.n_sync_edges = 1 if n > m else 0
    return report


def check_lower_sr(sr, S, m: int, level_ptr) -> PruningReport:
    """Structural coverage proof for the Segmented-Rows lower stage.

    Verifies the tiled subblock structure a
    :class:`repro.core.lower_sr.SegmentedRows` carves: every entry of
    subblock ``L_{k,i}`` must sit in a lower row (``row >= m``) at a
    column inside upper level ``i`` (so the per-level join on the upper
    stage's completion dominates its DIVIDE), entries within a subblock
    must ascend in (column, row) order (the bit-identity contract), and
    the union of subblocks must be exactly the strict-``< m`` entries of
    the lower rows.
    """
    level_ptr = np.asarray(level_ptr, dtype=np.int64)
    n = S.n_rows
    report = PruningReport(n_rows=n - m, n_threads=1)
    seen = set()
    for lvl in range(sr.n_levels):
        ents = sr.sub_entries[lvl]
        lo_c, hi_c = int(level_ptr[lvl]), int(level_ptr[lvl + 1])
        prev = (-1, -1)
        for kk, r, c in ents:
            kk, r, c = int(kk), int(r), int(c)
            report.n_dag_edges += 1
            if r < m:
                report.uncovered.append((r, c, lvl, "subblock entry in an upper-stage row"))
            if not (lo_c <= c < hi_c):
                report.uncovered.append(
                    (r, c, lvl, f"column outside level {lvl} range [{lo_c}, {hi_c})")
                )
            if not (lo_c <= c < m):
                report.uncovered.append((r, c, lvl, "column not in the lower-left block"))
            if (c, r) <= prev:
                report.uncovered.append(
                    (r, c, lvl, "subblock entries not in ascending (col, row) order")
                )
            prev = (c, r)
            if int(S.indices[kk]) != c:
                report.uncovered.append((r, c, lvl, "storage index does not match column"))
            seen.add(kk)
    # completeness: every strict-lower-left entry appears in some subblock
    indptr, indices = S.indptr, S.indices
    for r in range(m, n):
        for kk in range(int(indptr[r]), int(indptr[r + 1])):
            if int(indices[kk]) >= m:
                break
            if kk not in seen:
                report.uncovered.append(
                    (r, int(indices[kk]), -1, "lower-left entry missing from all subblocks")
                )
    report.n_sync_edges = sr.n_levels  # one per-level join dominates each DIVIDE
    report.n_cross_edges = report.n_dag_edges
    return report
