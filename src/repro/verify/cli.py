"""``python -m repro.verify`` — run every static-analysis pass and gate on it.

Passes (any failure makes the exit code 1):

``lint``
    The four repo-specific AST rules (:mod:`repro.verify.lint`) over the
    given paths (default: the installed ``repro`` package source).
``schedules``
    For every matrix of the synthetic suite (at ``--scale``): build the
    Javelin two-stage schedule, then (a) prove the pruned sync set of
    both the static and the dynamic row→thread map covers the true
    dependency DAG (:mod:`repro.verify.pruning`, with the pruning ratio
    reported), (b) replay both schedules with vector clocks and demand
    race-freedom (:mod:`repro.verify.races`), (c) cross-check that the
    DES and the threaded runtime derive identical sync sets, and (d)
    run the ER/SR lower-stage structural coverage checks.
``invariants``
    Structural validation of the patterns, level sets, plans and cached
    symbolic products the schedule pass built (including the
    frozen-cache-arrays rule).
``selftest``
    Negative controls: a seeded dropped-publish fault plan must be
    *flagged* by the race detector (on the schedule and on a DES trace
    replay), and deleting one retained sync edge must break the pruning
    proof.  A detector that cannot see planted bugs proves nothing.
``protocol`` (opt-in: ``--protocol``)
    Exhaustive small-N model checking of the cluster request protocol
    (:mod:`repro.verify.protocol`): every interleaving of dispatch /
    complete / lose / failover / hedge / crash / recover / join must
    keep the termination invariants, with livelock-freedom proved by
    backward reachability; the replication set must stay a prefix of
    the ring walk; the two planted protocol bugs (``drop_failover``,
    ``dual_dispatch``) must each be *caught* with a shortest
    counterexample; and a real :class:`ClusterService` run's recorded
    ``protocol_trace`` must conform to the model.
``deadlock`` (opt-in: ``--deadlock``)
    Static wait-for-graph analysis of the trisolve schedulers
    (:mod:`repro.verify.deadlock`): superstep barrier/program-order
    acyclicity, sync-free flag-poll acyclicity by topological sort,
    and the elastic ``final_sweep`` fixpoint recursion + its
    ``staleness``-based sweep bound — clean on every suite schedule,
    with tampered negative controls that must be caught.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = [
    "main",
    "build_parser",
    "run_lint",
    "run_schedules",
    "run_selftest",
    "run_protocol",
    "run_deadlock",
]

_PASSES = ("lint", "schedules", "invariants", "selftest", "protocol", "deadlock")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.verify", description=__doc__)
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package source)",
    )
    p.add_argument("--scale", type=float, default=0.25, help="suite size multiplier")
    p.add_argument(
        "--matrices",
        default=None,
        help="comma-separated suite names (default: the whole suite)",
    )
    p.add_argument("--threads", type=int, default=4, help="simulated thread count")
    p.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=_PASSES,
        help="skip a pass (repeatable)",
    )
    p.add_argument("--list-rules", action="store_true", help="print lint rule IDs and exit")
    p.add_argument(
        "--protocol",
        action="store_true",
        help="also model-check the cluster request protocol (exhaustive small-N)",
    )
    p.add_argument(
        "--deadlock",
        action="store_true",
        help="also run the static scheduler deadlock/fixpoint analysis",
    )
    p.add_argument(
        "--witness-out",
        default=None,
        metavar="PATH",
        help="write the protocol counterexample traces as Chrome trace JSON",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    return p


def run_lint(paths, *, out=print) -> int:
    """Run the AST lint; returns the number of findings."""
    from .lint import RULES, iter_python_files, lint_paths

    files = list(iter_python_files(paths))
    findings = lint_paths(paths)
    for f in findings:
        out(f.format())
    out(
        f"[lint] {len(findings)} finding(s) in {len(files)} file(s) "
        f"(rules {', '.join(sorted(RULES))})"
    )
    return len(findings)


def _suite_matrices(names, scale):
    from ..matrices import SUITE, build_matrix, preorder_for_javelin

    picked = sorted(SUITE) if names is None else [s.strip() for s in names.split(",")]
    for name in picked:
        if name not in SUITE:
            raise SystemExit(f"unknown suite matrix {name!r}")
        yield name, preorder_for_javelin(build_matrix(name, scale=scale))


def run_schedules(args, *, out=print):
    """Pruning + race + lower-stage checks across the suite.

    Returns ``(n_failures, worklist)`` where ``worklist`` carries the
    per-matrix objects for the invariants pass.
    """
    from ..core import JavelinILU
    from ..core.lower_sr import SegmentedRows
    from ..core.upper import assign_dynamic, assign_round_robin
    from ..kernels import cached_analysis
    from ..machine import SimMachine, uniform_machine
    from .pruning import (
        check_lower_er,
        check_lower_sr,
        check_pruning,
        implementation_sync_sets_agree,
    )
    from .races import replay_schedule

    p = args.threads
    machine = SimMachine(uniform_machine(n_cores=p), p)
    failures = 0
    worklist = []
    ratios = {"static": [], "dynamic": []}
    reads = 0
    for name, A in _suite_matrices(args.matrices, args.scale):
        ilu = JavelinILU().setup(A)
        S, level_ptr, m = ilu.S_perm, ilu.level_ptr, ilu.m
        ana = cached_analysis(S)
        flops, touched = ana.factor_costs()
        maps = {"static": assign_round_robin(level_ptr, p)}
        maps["dynamic"], _ = assign_dynamic(level_ptr, p, machine, flops, touched)
        for policy, thread_of in maps.items():
            pr = check_pruning(S, thread_of, m=m)
            rr = replay_schedule(S, thread_of, m=m)
            ratios[policy].append(pr.pruning_ratio)
            reads += rr.n_reads_checked
            if not pr.ok:
                failures += 1
                out(f"[pruning] {name} ({policy}): {pr.format()}")
            if not rr.ok:
                failures += 1
                out(f"[races] {name} ({policy}): {rr.format()}")
            if args.verbose:
                out(f"[schedules] {name} ({policy}): {pr.format()}")
        mism = implementation_sync_sets_agree(S, maps["static"], m=m)
        if mism:
            failures += 1
            r, mine, des = mism[0]
            out(
                f"[schedules] {name}: DES and threadpool sync sets disagree at "
                f"row {r}: {mine} vs {des} ({len(mism)} rows total)"
            )
        n = S.n_rows
        if n > m:
            er = check_lower_er(S, m, p)
            if not er.ok:
                failures += 1
                out(f"[lower-er] {name}: {er.format()}")
            sr = SegmentedRows.build(S, m, level_ptr)
            srr = check_lower_sr(sr, S, m, level_ptr)
            if not srr.ok:
                failures += 1
                out(f"[lower-sr] {name}: {srr.format()}")
        worklist.append((name, ilu, ana))
    for policy in ("static", "dynamic"):
        if ratios[policy]:
            r = ratios[policy]
            out(
                f"[pruning] {policy}: sync coverage proved on {len(r)} matrices, "
                f"pruning ratio mean {float(np.mean(r)):.3f} "
                f"(min {min(r):.3f}, max {max(r):.3f})"
            )
    out(f"[races] {reads} reads checked across static+dynamic schedules")
    return failures, worklist


def run_invariants(worklist, *, out=print) -> int:
    """Validate the structures the schedule pass built."""
    from .invariants import InvariantViolation, validate_analysis, validate_csr, validate_levels

    failures = 0
    for name, ilu, ana in worklist:
        try:
            validate_csr(ilu.S_perm, require_diagonal=True, name=f"{name}.S_perm")
            validate_csr(ilu.A_perm, name=f"{name}.A_perm")
            validate_levels(ilu.schedule.levels, name=f"{name}.levels")
            # force the sweep plans so the frozen-cache rule has entries to see
            ana.plan("lower")
            ana.plan("upper")
            validate_analysis(ana, name=f"{name}.analysis")
        except InvariantViolation as e:
            failures += 1
            out(f"[invariants] {name}: {e}")
    out(f"[invariants] {len(worklist)} matrices validated" + (" with failures" if failures else ""))
    return failures


def run_selftest(args, *, out=print) -> int:
    """Negative controls: planted bugs must be detected."""
    from ..core import JavelinILU
    from ..core.upper import assign_round_robin, simulate_upper_p2p
    from ..kernels import cached_analysis
    from ..machine import SimMachine, uniform_machine
    from ..matrices import build_matrix, preorder_for_javelin
    from ..resilience import FaultPlan, drop_last_publish
    from .pruning import check_pruning
    from .races import replay_schedule, replay_trace, sync_edges_from_producer_csr

    failures = 0
    p = args.threads
    A = preorder_for_javelin(build_matrix("wang3", scale=args.scale))
    ilu = JavelinILU().setup(A)
    S, level_ptr, m = ilu.S_perm, ilu.level_ptr, ilu.m
    thread_of = assign_round_robin(level_ptr, p)

    # 1) a dropped publish with no surviving cover must be flagged on the
    # schedule.  Seed it deterministically: take the first cross-thread
    # dependency edge c -> r and drop every publish of c's owner from c
    # on, so no later publish of that thread can heal the loss.  (The
    # plainer ``drop_last_publish`` seed can be vacuous when the
    # thread's last row has no upper-stage consumer.)
    edge = next(
        (
            (int(c), r)
            for r in range(m)
            for c in S.indices[S.indptr[r] : S.indptr[r + 1]]
            if c < r and int(thread_of[c]) != int(thread_of[r])
        ),
        None,
    )
    if edge is None:
        out("[selftest] no cross-thread edge at this scale; raise --scale")
        return failures + 1
    c0, _ = edge
    victim = int(thread_of[c0])
    dropped = frozenset(
        (victim, row) for row in range(c0, m) if int(thread_of[row]) == victim
    )
    assert dropped >= drop_last_publish(thread_of[:m], victim)
    plan = FaultPlan(dropped=dropped)
    rep = replay_schedule(S, thread_of, m=m, fault_plan=plan)
    flagged = any(w.kind == "dropped-publish" for w in rep.witnesses)
    if not flagged:
        failures += 1
        out("[selftest] FAIL: dropped-publish schedule was not flagged")
    else:
        out(
            f"[selftest] dropped publishes of thread {victim} (rows >= {c0}) flagged: "
            f"{len(rep.witnesses)} witness(es), first: "
            f"{rep.witnesses[0].kind} row {rep.witnesses[0].row} <- "
            f"dep {rep.witnesses[0].dep}"
        )

    # 2) the same fault plan on a DES trace replay
    machine = SimMachine(uniform_machine(n_cores=p), p)
    flops, touched = cached_analysis(S).factor_costs()
    _, _, trace = simulate_upper_p2p(
        S, level_ptr, machine, flops, touched, fault_plan=plan
    )
    rep_t = replay_trace(trace, S, fault_plan=plan)
    if rep_t.ok:
        failures += 1
        out("[selftest] FAIL: dropped-publish DES trace was not flagged")
    else:
        out(f"[selftest] fault-injected DES trace flagged ({len(rep_t.witnesses)} witness(es))")
    # the fault-free trace must be clean
    _, _, trace0 = simulate_upper_p2p(S, level_ptr, machine, flops, touched)
    rep0 = replay_trace(trace0, S)
    if not rep0.ok:
        failures += 1
        out(f"[selftest] FAIL: fault-free DES trace reported races: {rep0.format()}")

    # 3) deleting one retained sync edge must break the pruning proof
    from ..kernels.plans import build_producer_csr

    sync = sync_edges_from_producer_csr(*build_producer_csr(S, m, thread_of))
    victim_row = next((r for r in range(m) if sync[r]), None)
    if victim_row is not None:
        u = next(iter(sync[victim_row]))
        del sync[victim_row][u]
        pr = check_pruning(S, thread_of, m=m, sync=sync)
        rr = replay_schedule(S, thread_of, m=m, sync=sync)
        if pr.ok or rr.ok:
            failures += 1
            out("[selftest] FAIL: removed sync edge not caught "
                f"(pruning ok={pr.ok}, races ok={rr.ok})")
        else:
            out(
                f"[selftest] removed sync (row {victim_row}, thread {u}) caught by "
                f"pruning ({len(pr.uncovered)} uncovered) and races "
                f"({len(rr.witnesses)} witness(es))"
            )
    if failures == 0:
        out("[selftest] all planted bugs detected")
    return failures


def run_protocol(args, *, out=print) -> int:
    """Model-check the cluster protocol; planted bugs must be caught."""
    import dataclasses

    from .protocol import (
        ProtocolConfig,
        check_cluster_trace,
        check_replication_prefix,
        model_check,
        witness_trace_events,
    )

    failures = 0
    witness_events = []

    # 1) replication sets are always a prefix of the ring walk, even
    # across hot-key promotion
    viols = check_replication_prefix()
    if viols:
        failures += 1
        out(f"[protocol] FAIL: replication-prefix violated: {viols[0]}")
    else:
        out("[protocol] replication sets stay a prefix of the ring walk")

    # 2) the real protocol is safe across ALL interleavings of the
    # selftest configuration (>=3 nodes, >=4 requests, crash + hedge)
    cfg = ProtocolConfig()
    rep = model_check(cfg)
    if not rep.ok:
        failures += 1
    out(f"[protocol] {rep.format()}")

    # 3) ... and livelock-free under fairness on a richer configuration
    # (deeper crash budget + a delayed join)
    cfg_live = dataclasses.replace(cfg, crash_budget=2, delayed_joins=1)
    rep_live = model_check(cfg_live, liveness=True)
    if not rep_live.ok:
        failures += 1
    out(f"[protocol] {rep_live.format()}")

    # 4) negative controls: both planted bugs must produce a shortest
    # counterexample (a checker that cannot see them proves nothing)
    for flag, expect in (("drop_failover", "dropped-reroute"),
                         ("dual_dispatch", "double-termination")):
        bad = model_check(
            dataclasses.replace(cfg, **{flag: True}), stop_on_first=True
        )
        hit = [w for w in bad.witnesses if w.kind == expect]
        if not hit:
            failures += 1
            out(f"[protocol] FAIL: planted {flag} bug was not caught")
        else:
            w = hit[0]
            out(
                f"[protocol] planted {flag} caught: {w.kind} in "
                f"{len(w.trace)} transition(s)"
            )
            if args.verbose:
                out(w.format())
            witness_events.extend(
                witness_trace_events(w, n_nodes=cfg.n_nodes)
            )

    # 5) a real ClusterService run (crashes mid-flight, hedging on)
    # must replay inside the abstract model
    failures += _protocol_conformance_smoke(out=out)

    if args.witness_out and witness_events:
        from ..obs.chrome_trace import validate_events, write_chrome_trace

        errs = validate_events(witness_events)
        if errs:
            failures += 1
            out(f"[protocol] FAIL: witness trace invalid: {errs[0]}")
        else:
            write_chrome_trace(args.witness_out, witness_events)
            out(f"[protocol] counterexample traces written to {args.witness_out}")
    return failures


def _protocol_conformance_smoke(*, out=print) -> int:
    """Replay one real crashy ClusterService run through the model."""
    from ..cluster import ClusterService, NodeFaultPlan
    from ..matrices import grid2d
    from ..serve import BatchPolicy, SolveRequest
    from .protocol import check_cluster_trace

    matrices = {
        "g10": grid2d(10),
        "c10": grid2d(10, convection=1.0),
        "g14": grid2d(14),
    }
    keys = sorted(matrices)
    rng = np.random.default_rng(0)
    reqs, t = [], 0.0
    for i in range(48):
        t += float(rng.exponential(1.0 / 800.0))
        key = keys[int(rng.integers(len(keys)))]
        reqs.append(
            SolveRequest(
                request_id=i,
                tenant=f"t{int(rng.integers(2))}",
                matrix_key=key,
                b=rng.standard_normal(matrices[key].n_rows),
                arrival_time=t,
                deadline=t + 0.3,
                maxiter=60,
            )
        )
    plan = NodeFaultPlan(
        seed=1,
        crashes=((1, 0.01, 0.08), (2, 0.05, 0.12)),
        slow=((1, 0.0, 0.01, 8.0),),
    )
    svc = ClusterService(
        matrices,
        n_nodes=3,
        replication=2,
        batch_policy=BatchPolicy(max_batch=8, max_wait=0.01),
        node_fault_plan=plan,
        hedge_after=0.005,
    )
    svc.run(reqs)
    conf = check_cluster_trace(
        svc.protocol_trace,
        n_nodes=3,
        up_at_start=lambda n: plan.is_up(n, 0.0),
    )
    out(f"[protocol] {conf.format()}")
    return 0 if conf.ok else 1


def run_deadlock(args, *, out=print) -> int:
    """Static scheduler wait-for analysis; tampering must be caught."""
    import dataclasses

    from ..sched import build_elastic_schedule, build_superstep_plan
    from .deadlock import (
        check_elastic_schedule,
        check_superstep_deadlock,
        check_syncfree_deadlock,
    )

    failures = 0
    p = args.threads
    n_edges = 0
    n_plans = 0
    last = None  # (name, pattern, lower plan) for the negative controls
    for name, A in _suite_matrices(args.matrices, args.scale):
        S = A  # scheduler analyses run on the preordered pattern itself
        for part in ("lower", "upper"):
            plan = build_superstep_plan(S, part, n_threads=p)
            rep = check_superstep_deadlock(plan, S)
            n_edges += rep.n_edges
            n_plans += 1
            if not rep.ok:
                failures += 1
                out(f"[deadlock] {name} superstep/{part}: {rep.format()}")
            sf = check_syncfree_deadlock(S, p, part)
            if not sf.ok:
                failures += 1
                out(f"[deadlock] {name} syncfree/{part}: {sf.format()}")
            for staleness in (0, 2):
                es = build_elastic_schedule(S, part, staleness=staleness)
                er = check_elastic_schedule(es, S)
                if not er.ok:
                    failures += 1
                    out(f"[deadlock] {name} elastic/{part}/s={staleness}: {er.format()}")
            if part == "lower" and plan.n_steps >= 2:
                last = (name, S, plan)
        if args.verbose:
            out(f"[deadlock] {name}: superstep/syncfree/elastic wait-for graphs acyclic")
    out(
        f"[deadlock] {n_plans} superstep plans + sync-free lanes + elastic "
        f"fixpoints proved acyclic/terminating ({n_edges} dependency edges)"
    )

    # negative controls on the last multi-step lower plan
    if last is None:
        out("[deadlock] no multi-step plan at this scale; raise --scale")
        return failures + 1
    name, S, plan = last
    tampered = np.delete(plan.step_ptr, plan.n_steps // 2 or 1)
    rep = check_superstep_deadlock(plan, S, step_ptr=tampered)
    if rep.ok or not any(w.kind == "unordered-read" for w in rep.witnesses):
        failures += 1
        out(f"[deadlock] FAIL: deleted barrier on {name} not caught")
    else:
        out(
            f"[deadlock] deleted barrier on {name} caught "
            f"({len(rep.witnesses)} unordered-read witness(es))"
        )
    sf = check_syncfree_deadlock(
        S, p, "lower", order=np.arange(S.n_rows - 1, -1, -1)
    )
    if sf.ok or not any(w.kind == "deadlock" for w in sf.witnesses):
        failures += 1
        out(f"[deadlock] FAIL: reversed sync-free traversal on {name} not caught")
    else:
        out(f"[deadlock] reversed sync-free traversal on {name} caught (poll cycle)")
    es = build_elastic_schedule(S, "lower", staleness=2)
    fs = np.asarray(es.final_sweep).copy()
    if fs.max() == 0:
        out(f"[deadlock] {name} has a flat elastic fixpoint; raise --scale")
        failures += 1
    else:
        fs[int(np.argmax(fs))] = 0
        er = check_elastic_schedule(dataclasses.replace(es, final_sweep=fs), S)
        if er.ok or not any(w.kind == "fixpoint" for w in er.witnesses):
            failures += 1
            out(f"[deadlock] FAIL: tampered final_sweep on {name} not caught")
        else:
            out(
                f"[deadlock] tampered elastic final_sweep on {name} caught "
                "(fixpoint witness)"
            )
    if args.verbose and rep.witnesses:
        out(rep.witnesses[0].format())
    return failures


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from .lint import RULES

        for rule_id, check in sorted(RULES.items()):
            doc = (check.__doc__ or "").strip().splitlines()
            print(f"{rule_id}: {doc[0] if doc else check.__name__}")
        return 0
    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    failures = 0
    if "lint" not in args.skip:
        failures += run_lint(paths)
    worklist = []
    if "schedules" not in args.skip:
        n, worklist = run_schedules(args)
        failures += n
    if "invariants" not in args.skip and worklist:
        failures += run_invariants(worklist)
    if "selftest" not in args.skip:
        failures += run_selftest(args)
    if args.protocol and "protocol" not in args.skip:
        failures += run_protocol(args)
    if args.deadlock and "deadlock" not in args.skip:
        failures += run_deadlock(args)
    print("PASS" if failures == 0 else f"FAIL ({failures} failure(s))")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
