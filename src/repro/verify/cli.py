"""``python -m repro.verify`` — run every static-analysis pass and gate on it.

Passes (any failure makes the exit code 1):

``lint``
    The four repo-specific AST rules (:mod:`repro.verify.lint`) over the
    given paths (default: the installed ``repro`` package source).
``schedules``
    For every matrix of the synthetic suite (at ``--scale``): build the
    Javelin two-stage schedule, then (a) prove the pruned sync set of
    both the static and the dynamic row→thread map covers the true
    dependency DAG (:mod:`repro.verify.pruning`, with the pruning ratio
    reported), (b) replay both schedules with vector clocks and demand
    race-freedom (:mod:`repro.verify.races`), (c) cross-check that the
    DES and the threaded runtime derive identical sync sets, and (d)
    run the ER/SR lower-stage structural coverage checks.
``invariants``
    Structural validation of the patterns, level sets, plans and cached
    symbolic products the schedule pass built (including the
    frozen-cache-arrays rule).
``selftest``
    Negative controls: a seeded dropped-publish fault plan must be
    *flagged* by the race detector (on the schedule and on a DES trace
    replay), and deleting one retained sync edge must break the pruning
    proof.  A detector that cannot see planted bugs proves nothing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser", "run_lint", "run_schedules", "run_selftest"]

_PASSES = ("lint", "schedules", "invariants", "selftest")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.verify", description=__doc__)
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package source)",
    )
    p.add_argument("--scale", type=float, default=0.25, help="suite size multiplier")
    p.add_argument(
        "--matrices",
        default=None,
        help="comma-separated suite names (default: the whole suite)",
    )
    p.add_argument("--threads", type=int, default=4, help="simulated thread count")
    p.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=_PASSES,
        help="skip a pass (repeatable)",
    )
    p.add_argument("--list-rules", action="store_true", help="print lint rule IDs and exit")
    p.add_argument("-v", "--verbose", action="store_true")
    return p


def run_lint(paths, *, out=print) -> int:
    """Run the AST lint; returns the number of findings."""
    from .lint import RULES, iter_python_files, lint_paths

    files = list(iter_python_files(paths))
    findings = lint_paths(paths)
    for f in findings:
        out(f.format())
    out(
        f"[lint] {len(findings)} finding(s) in {len(files)} file(s) "
        f"(rules {', '.join(sorted(RULES))})"
    )
    return len(findings)


def _suite_matrices(names, scale):
    from ..matrices import SUITE, build_matrix, preorder_for_javelin

    picked = sorted(SUITE) if names is None else [s.strip() for s in names.split(",")]
    for name in picked:
        if name not in SUITE:
            raise SystemExit(f"unknown suite matrix {name!r}")
        yield name, preorder_for_javelin(build_matrix(name, scale=scale))


def run_schedules(args, *, out=print):
    """Pruning + race + lower-stage checks across the suite.

    Returns ``(n_failures, worklist)`` where ``worklist`` carries the
    per-matrix objects for the invariants pass.
    """
    from ..core import JavelinILU
    from ..core.lower_sr import SegmentedRows
    from ..core.upper import assign_dynamic, assign_round_robin
    from ..kernels import cached_analysis
    from ..machine import SimMachine, uniform_machine
    from .pruning import (
        check_lower_er,
        check_lower_sr,
        check_pruning,
        implementation_sync_sets_agree,
    )
    from .races import replay_schedule

    p = args.threads
    machine = SimMachine(uniform_machine(n_cores=p), p)
    failures = 0
    worklist = []
    ratios = {"static": [], "dynamic": []}
    reads = 0
    for name, A in _suite_matrices(args.matrices, args.scale):
        ilu = JavelinILU().setup(A)
        S, level_ptr, m = ilu.S_perm, ilu.level_ptr, ilu.m
        ana = cached_analysis(S)
        flops, touched = ana.factor_costs()
        maps = {"static": assign_round_robin(level_ptr, p)}
        maps["dynamic"], _ = assign_dynamic(level_ptr, p, machine, flops, touched)
        for policy, thread_of in maps.items():
            pr = check_pruning(S, thread_of, m=m)
            rr = replay_schedule(S, thread_of, m=m)
            ratios[policy].append(pr.pruning_ratio)
            reads += rr.n_reads_checked
            if not pr.ok:
                failures += 1
                out(f"[pruning] {name} ({policy}): {pr.format()}")
            if not rr.ok:
                failures += 1
                out(f"[races] {name} ({policy}): {rr.format()}")
            if args.verbose:
                out(f"[schedules] {name} ({policy}): {pr.format()}")
        mism = implementation_sync_sets_agree(S, maps["static"], m=m)
        if mism:
            failures += 1
            r, mine, des = mism[0]
            out(
                f"[schedules] {name}: DES and threadpool sync sets disagree at "
                f"row {r}: {mine} vs {des} ({len(mism)} rows total)"
            )
        n = S.n_rows
        if n > m:
            er = check_lower_er(S, m, p)
            if not er.ok:
                failures += 1
                out(f"[lower-er] {name}: {er.format()}")
            sr = SegmentedRows.build(S, m, level_ptr)
            srr = check_lower_sr(sr, S, m, level_ptr)
            if not srr.ok:
                failures += 1
                out(f"[lower-sr] {name}: {srr.format()}")
        worklist.append((name, ilu, ana))
    for policy in ("static", "dynamic"):
        if ratios[policy]:
            r = ratios[policy]
            out(
                f"[pruning] {policy}: sync coverage proved on {len(r)} matrices, "
                f"pruning ratio mean {float(np.mean(r)):.3f} "
                f"(min {min(r):.3f}, max {max(r):.3f})"
            )
    out(f"[races] {reads} reads checked across static+dynamic schedules")
    return failures, worklist


def run_invariants(worklist, *, out=print) -> int:
    """Validate the structures the schedule pass built."""
    from .invariants import InvariantViolation, validate_analysis, validate_csr, validate_levels

    failures = 0
    for name, ilu, ana in worklist:
        try:
            validate_csr(ilu.S_perm, require_diagonal=True, name=f"{name}.S_perm")
            validate_csr(ilu.A_perm, name=f"{name}.A_perm")
            validate_levels(ilu.schedule.levels, name=f"{name}.levels")
            # force the sweep plans so the frozen-cache rule has entries to see
            ana.plan("lower")
            ana.plan("upper")
            validate_analysis(ana, name=f"{name}.analysis")
        except InvariantViolation as e:
            failures += 1
            out(f"[invariants] {name}: {e}")
    out(f"[invariants] {len(worklist)} matrices validated" + (" with failures" if failures else ""))
    return failures


def run_selftest(args, *, out=print) -> int:
    """Negative controls: planted bugs must be detected."""
    from ..core import JavelinILU
    from ..core.upper import assign_round_robin, simulate_upper_p2p
    from ..kernels import cached_analysis
    from ..machine import SimMachine, uniform_machine
    from ..matrices import build_matrix, preorder_for_javelin
    from ..resilience import FaultPlan, drop_last_publish
    from .pruning import check_pruning
    from .races import replay_schedule, replay_trace, sync_edges_from_producer_csr

    failures = 0
    p = args.threads
    A = preorder_for_javelin(build_matrix("wang3", scale=args.scale))
    ilu = JavelinILU().setup(A)
    S, level_ptr, m = ilu.S_perm, ilu.level_ptr, ilu.m
    thread_of = assign_round_robin(level_ptr, p)

    # 1) a dropped publish with no surviving cover must be flagged on the
    # schedule.  Seed it deterministically: take the first cross-thread
    # dependency edge c -> r and drop every publish of c's owner from c
    # on, so no later publish of that thread can heal the loss.  (The
    # plainer ``drop_last_publish`` seed can be vacuous when the
    # thread's last row has no upper-stage consumer.)
    edge = next(
        (
            (int(c), r)
            for r in range(m)
            for c in S.indices[S.indptr[r] : S.indptr[r + 1]]
            if c < r and int(thread_of[c]) != int(thread_of[r])
        ),
        None,
    )
    if edge is None:
        out("[selftest] no cross-thread edge at this scale; raise --scale")
        return failures + 1
    c0, _ = edge
    victim = int(thread_of[c0])
    dropped = frozenset(
        (victim, row) for row in range(c0, m) if int(thread_of[row]) == victim
    )
    assert dropped >= drop_last_publish(thread_of[:m], victim)
    plan = FaultPlan(dropped=dropped)
    rep = replay_schedule(S, thread_of, m=m, fault_plan=plan)
    flagged = any(w.kind == "dropped-publish" for w in rep.witnesses)
    if not flagged:
        failures += 1
        out("[selftest] FAIL: dropped-publish schedule was not flagged")
    else:
        out(
            f"[selftest] dropped publishes of thread {victim} (rows >= {c0}) flagged: "
            f"{len(rep.witnesses)} witness(es), first: "
            f"{rep.witnesses[0].kind} row {rep.witnesses[0].row} <- "
            f"dep {rep.witnesses[0].dep}"
        )

    # 2) the same fault plan on a DES trace replay
    machine = SimMachine(uniform_machine(n_cores=p), p)
    flops, touched = cached_analysis(S).factor_costs()
    _, _, trace = simulate_upper_p2p(
        S, level_ptr, machine, flops, touched, fault_plan=plan
    )
    rep_t = replay_trace(trace, S, fault_plan=plan)
    if rep_t.ok:
        failures += 1
        out("[selftest] FAIL: dropped-publish DES trace was not flagged")
    else:
        out(f"[selftest] fault-injected DES trace flagged ({len(rep_t.witnesses)} witness(es))")
    # the fault-free trace must be clean
    _, _, trace0 = simulate_upper_p2p(S, level_ptr, machine, flops, touched)
    rep0 = replay_trace(trace0, S)
    if not rep0.ok:
        failures += 1
        out(f"[selftest] FAIL: fault-free DES trace reported races: {rep0.format()}")

    # 3) deleting one retained sync edge must break the pruning proof
    from ..kernels.plans import build_producer_csr

    sync = sync_edges_from_producer_csr(*build_producer_csr(S, m, thread_of))
    victim_row = next((r for r in range(m) if sync[r]), None)
    if victim_row is not None:
        u = next(iter(sync[victim_row]))
        del sync[victim_row][u]
        pr = check_pruning(S, thread_of, m=m, sync=sync)
        rr = replay_schedule(S, thread_of, m=m, sync=sync)
        if pr.ok or rr.ok:
            failures += 1
            out("[selftest] FAIL: removed sync edge not caught "
                f"(pruning ok={pr.ok}, races ok={rr.ok})")
        else:
            out(
                f"[selftest] removed sync (row {victim_row}, thread {u}) caught by "
                f"pruning ({len(pr.uncovered)} uncovered) and races "
                f"({len(rr.witnesses)} witness(es))"
            )
    if failures == 0:
        out("[selftest] all planted bugs detected")
    return failures


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from .lint import RULES

        for rule_id, check in sorted(RULES.items()):
            doc = (check.__doc__ or "").strip().splitlines()
            print(f"{rule_id}: {doc[0] if doc else check.__name__}")
        return 0
    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    failures = 0
    if "lint" not in args.skip:
        failures += run_lint(paths)
    worklist = []
    if "schedules" not in args.skip:
        n, worklist = run_schedules(args)
        failures += n
    if "invariants" not in args.skip and worklist:
        failures += run_invariants(worklist)
    if "selftest" not in args.skip:
        failures += run_selftest(args)
    print("PASS" if failures == 0 else f"FAIL ({failures} failure(s))")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
