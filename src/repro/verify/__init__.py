"""Static analysis for the framework's scheduling and structure claims.

Javelin's correctness story is an *argument* — one monotonic progress
counter per thread suffices because the row→thread map's implied
ordering prunes the dependency DAG (§III-A) — and this package turns it
into executable checks:

* :mod:`repro.verify.races` — happens-before replay of a schedule or an
  execution trace with vector clocks; reports unordered reads with
  sanitizer-style witnesses.
* :mod:`repro.verify.pruning` — a domination proof that the pruned sync
  set the DES and the threaded runtime actually use covers the true
  DAG, plus the paper's sparsification (pruning-ratio) diagnostic and
  ER/SR lower-stage structural coverage checks.
* :mod:`repro.verify.invariants` — structural validators for CSR/CSC
  matrices, level sets, sweep plans and cached symbolic products
  (including the frozen-cache-arrays rule), installable as debug hooks
  on kernel dispatch and cache lookups.
* :mod:`repro.verify.lint` — repo-specific AST rules (JAV001–JAV008).
* :mod:`repro.verify.conservation` — the dynamic request-conservation
  auditor for the serving/cluster layers: every admitted request
  terminates in exactly one structured outcome, under any fault
  schedule (the cluster bench's planted-bug gate drops a failover
  re-route and demands this checker catch the loss).
* :mod:`repro.verify.protocol` — exhaustive small-N model checking of
  the cluster request protocol: every interleaving of dispatch /
  failover / hedge / crash / recover / join keeps the termination
  invariants, livelock-freedom under fairness, replication-prefix, and
  conformance replay of real :class:`ClusterService` traces.
* :mod:`repro.verify.deadlock` — static wait-for-graph analysis of the
  trisolve schedulers: superstep barrier acyclicity, sync-free
  flag-poll acyclicity, and the elastic ``final_sweep`` fixpoint bound,
  with wait-chain witnesses for tampered schedules.

Run everything with ``python -m repro.verify`` (or ``repro verify``;
the protocol and deadlock stages are opt-in via ``--protocol`` /
``--deadlock``); see ``docs/static_analysis.md``.
"""

from .conservation import ConservationReport, check_conservation
from .deadlock import (
    DeadlockReport,
    WaitWitness,
    check_elastic_schedule,
    check_superstep_deadlock,
    check_syncfree_deadlock,
)
from .invariants import (
    InvariantViolation,
    disable_debug_validation,
    enable_debug_validation,
    validate,
    validate_analysis,
    validate_csc,
    validate_csr,
    validate_levels,
    validate_plan,
)
from .lint import Finding, RULES, lint_paths, lint_source
from .protocol import (
    ConformanceReport,
    ProtocolConfig,
    ProtocolReport,
    ProtocolWitness,
    check_cluster_trace,
    check_replication_prefix,
    model_check,
    witness_trace_events,
)
from .pruning import (
    PruningReport,
    check_lower_er,
    check_lower_sr,
    check_pruning,
    implementation_sync_sets_agree,
)
from .races import (
    RaceReport,
    RaceWitness,
    replay_schedule,
    replay_superstep_schedule,
    replay_trace,
    sync_edges_from_producer_csr,
    thread_sequences,
)

__all__ = [
    "ConservationReport",
    "check_conservation",
    "ProtocolConfig",
    "ProtocolWitness",
    "ProtocolReport",
    "ConformanceReport",
    "model_check",
    "check_cluster_trace",
    "check_replication_prefix",
    "witness_trace_events",
    "DeadlockReport",
    "WaitWitness",
    "check_superstep_deadlock",
    "check_syncfree_deadlock",
    "check_elastic_schedule",
    "InvariantViolation",
    "validate",
    "validate_csr",
    "validate_csc",
    "validate_levels",
    "validate_plan",
    "validate_analysis",
    "enable_debug_validation",
    "disable_debug_validation",
    "Finding",
    "RULES",
    "lint_source",
    "lint_paths",
    "PruningReport",
    "check_pruning",
    "check_lower_er",
    "check_lower_sr",
    "implementation_sync_sets_agree",
    "RaceWitness",
    "RaceReport",
    "replay_schedule",
    "replay_superstep_schedule",
    "replay_trace",
    "thread_sequences",
    "sync_edges_from_producer_csr",
]
